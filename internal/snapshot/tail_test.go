package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/binio"
	"repro/internal/fault"
)

func TestTailRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.tail")
	batches := []struct {
		table string
		cols  [][]float64
	}{
		{"gps", [][]float64{{1, 2, 3}, {4, 5, 6}}},
		{"gps", [][]float64{{math.NaN(), math.Inf(1)}, {7, -0.0}}},
		{"other", [][]float64{{9}, {10}, {11}}},
	}
	for _, b := range batches {
		if err := AppendTail(path, b.table, b.cols, 0); err != nil {
			t.Fatal(err)
		}
	}
	recs, _, err := LoadTail(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(batches) {
		t.Fatalf("loaded %d records, wrote %d", len(recs), len(batches))
	}
	for i, b := range batches {
		if recs[i].Table != b.table {
			t.Fatalf("record %d table %q, want %q", i, recs[i].Table, b.table)
		}
		if len(recs[i].Cols) != len(b.cols) {
			t.Fatalf("record %d has %d cols, want %d", i, len(recs[i].Cols), len(b.cols))
		}
		for ci := range b.cols {
			for ri := range b.cols[ci] {
				got, want := recs[i].Cols[ci][ri], b.cols[ci][ri]
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("record %d col %d row %d: %g != %g", i, ci, ri, got, want)
				}
			}
		}
	}
}

func TestTailMissingIsEmpty(t *testing.T) {
	recs, _, err := LoadTail(filepath.Join(t.TempDir(), "nope.tail"))
	if err != nil || recs != nil {
		t.Fatalf("missing tail: recs %v err %v, want nil/nil", recs, err)
	}
}

// TestTailTornFinalRecordDropped simulates a crash mid-append: every
// truncation point inside the final record must load cleanly with that
// record dropped and every earlier record intact.
func TestTailTornFinalRecordDropped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.tail")
	if err := AppendTail(path, "gps", [][]float64{{1, 2}, {3, 4}}, 0); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := AppendTail(path, "gps", [][]float64{{5, 6, 7}, {8, 9, 10}}, 0); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(whole); cut < len(full); cut++ {
		torn := filepath.Join(dir, "torn.tail")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, _, err := LoadTail(torn)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(recs) != 1 || len(recs[0].Cols[0]) != 2 {
			t.Fatalf("cut at %d: got %d records, want the 1 intact one", cut, len(recs))
		}
	}
}

// TestTailCorruptionRejected flips one byte inside a complete record's
// payload: the CRC must catch it and fail the load (unlike a torn
// tail, this is not a crash artifact).
func TestTailCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.tail")
	if err := AppendTail(path, "gps", [][]float64{{1, 2, 3}, {4, 5, 6}}, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte (inside the record, past header + frame len).
	raw[tailHeaderLenV3+8+4] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadTail(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted tail loaded: err %v, want ErrCorrupt", err)
	}
}

func TestTailVersionSkewRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.tail")
	if err := AppendTail(path, "gps", [][]float64{{1}, {2}}, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(raw[4:8], TailFormatVersion+1)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadTail(path); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("version-skewed tail loaded: err %v, want ErrVersionSkew", err)
	}
}

func TestRemoveTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.tail")
	if err := RemoveTail(path); err != nil {
		t.Fatalf("removing a missing tail: %v", err)
	}
	if err := AppendTail(path, "gps", [][]float64{{1}, {2}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := RemoveTail(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("tail still present after RemoveTail")
	}
}

// writeV1Tail fabricates a pre-delete (v1) tail log byte-for-byte: the
// same framing, but payloads carry no record-kind prefix.
func writeV1Tail(t *testing.T, path string, batches []TailRecord) {
	t.Helper()
	buf := []byte(TailMagic)
	buf = binary.LittleEndian.AppendUint32(buf, 1)
	for _, b := range batches {
		var payload bytes.Buffer
		pw := binio.NewWriter(&payload)
		pw.String(b.Table)
		pw.U32(uint32(len(b.Cols)))
		pw.U64(uint64(len(b.Cols[0])))
		for _, c := range b.Cols {
			pw.F64s(c)
		}
		if err := pw.Flush(); err != nil {
			t.Fatal(err)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(payload.Len()))
		buf = append(buf, payload.Bytes()...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload.Bytes()))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTailDeleteRoundTrip interleaves append and delete records and
// checks the replay stream comes back in order with exact predicates.
func TestTailDeleteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.tail")
	if err := AppendTail(path, "gps", [][]float64{{1, 2}, {3, 4}}, 0); err != nil {
		t.Fatal(err)
	}
	preds := []TailPred{
		{Col: "x", Min: math.Inf(-1), Max: 5},
		{Col: "speed|odd:name", Min: -0.0, Max: math.Inf(1)},
	}
	if err := AppendTailDelete(path, "gps", preds, 0); err != nil {
		t.Fatal(err)
	}
	if err := AppendTail(path, "gps", [][]float64{{9}, {10}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := AppendTailDelete(path, "other", nil, 0); err != nil { // delete-everything
		t.Fatal(err)
	}
	recs, _, err := LoadTail(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("loaded %d records, wrote 4", len(recs))
	}
	wantDelete := []bool{false, true, false, true}
	for i, rec := range recs {
		if rec.Delete != wantDelete[i] {
			t.Fatalf("record %d Delete = %t, want %t", i, rec.Delete, wantDelete[i])
		}
	}
	d := recs[1]
	if d.Table != "gps" || len(d.Preds) != len(preds) || d.Cols != nil {
		t.Fatalf("delete record diverged: %+v", d)
	}
	for i, p := range preds {
		g := d.Preds[i]
		if g.Col != p.Col || math.Float64bits(g.Min) != math.Float64bits(p.Min) ||
			math.Float64bits(g.Max) != math.Float64bits(p.Max) {
			t.Fatalf("pred %d: %+v, want %+v", i, g, p)
		}
	}
	if last := recs[3]; last.Table != "other" || len(last.Preds) != 0 {
		t.Fatalf("delete-everything record diverged: %+v", last)
	}
}

// TestTailV1PromotedOnAppend: the first append (row batch or delete) to
// a v1 log rewrites it as v2 with every old record intact, so one file
// never mixes payload layouts.
func TestTailV1PromotedOnAppend(t *testing.T) {
	for _, mode := range []string{"append", "delete"} {
		t.Run(mode, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "catalog.tail")
			writeV1Tail(t, path, []TailRecord{
				{Table: "gps", Cols: [][]float64{{1, 2}, {3, 4}}},
				{Table: "gps", Cols: [][]float64{{math.NaN()}, {5}}},
			})
			// Sanity: the v1 bytes load as-is.
			if recs, _, err := LoadTail(path); err != nil || len(recs) != 2 {
				t.Fatalf("v1 load: %d records, err %v", len(recs), err)
			}
			var err error
			if mode == "append" {
				err = AppendTail(path, "gps", [][]float64{{7}, {8}}, 0)
			} else {
				err = AppendTailDelete(path, "gps", []TailPred{{Col: "x", Min: 0, Max: 1}}, 0)
			}
			if err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if v := binary.LittleEndian.Uint32(raw[4:8]); v != TailFormatVersion {
				t.Fatalf("log is still v%d after promotion", v)
			}
			recs, _, err := LoadTail(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 3 {
				t.Fatalf("loaded %d records after promotion, want 3", len(recs))
			}
			if recs[0].Cols[0][0] != 1 || !math.IsNaN(recs[1].Cols[0][0]) {
				t.Fatal("v1 records mangled by promotion")
			}
			if (recs[2].Delete) != (mode == "delete") {
				t.Fatalf("new record Delete = %t in mode %s", recs[2].Delete, mode)
			}
			// No temp file left behind.
			entries, err := os.ReadDir(filepath.Dir(path))
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 1 {
				t.Fatalf("directory holds %d entries after promotion", len(entries))
			}
		})
	}
}

// TestTailUnknownKindRejected: a well-framed v2 record with a kind this
// build does not know is corruption, not a silent skip — replay order
// matters, so an unreplayable mutation poisons the log.
func TestTailUnknownKindRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.tail")
	if err := AppendTail(path, "gps", [][]float64{{1}, {2}}, 0); err != nil {
		t.Fatal(err)
	}
	payload := binary.LittleEndian.AppendUint32(nil, 7) // unknown kind
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw = binary.LittleEndian.AppendUint64(raw, uint64(len(payload)))
	raw = append(raw, payload...)
	raw = binary.LittleEndian.AppendUint32(raw, crc32.ChecksumIEEE(payload))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadTail(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown-kind record loaded: err %v, want ErrCorrupt", err)
	}
}

// TestTailTornDeleteDropped: a crash mid-way through writing a delete
// record leaves every earlier record loadable, like torn appends.
func TestTailTornDeleteDropped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.tail")
	if err := AppendTail(path, "gps", [][]float64{{1, 2}, {3, 4}}, 0); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := AppendTailDelete(path, "gps", []TailPred{{Col: "x", Min: 0, Max: 50}}, 0); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(whole); cut < len(full); cut++ {
		torn := filepath.Join(dir, "torn.tail")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, _, err := LoadTail(torn)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(recs) != 1 || recs[0].Delete {
			t.Fatalf("cut at %d: got %d records, want the 1 intact append", cut, len(recs))
		}
	}
}

// TestTailPromotionCrashRecovery crashes the legacy v1→v3 promotion at
// every mutating file-op site (satellite of the ISSUE 10 torture
// suite): promotion is temp-write + rename, so whatever site the crash
// hits, LoadTail afterwards must see either the intact legacy records
// or the fully promoted log (with the triggering append optionally
// landed) — never a torn mix, never an error.
func TestTailPromotionCrashRecovery(t *testing.T) {
	legacy := []TailRecord{
		{Table: "gps", Cols: [][]float64{{1, 2}, {3, 4}}},
		{Table: "gps", Cols: [][]float64{{5}, {6}}},
	}
	newCols := [][]float64{{7}, {8}}
	write := func(path string) { writeV1Tail(t, path, legacy) }

	// Recording pass: count the mutating ops of promote-then-append.
	recPath := filepath.Join(t.TempDir(), "catalog.tail")
	write(recPath)
	rec := fault.NewInjector(nil)
	restore := SetFS(rec)
	if err := AppendTail(recPath, "gps", newCols, 9); err != nil {
		restore()
		t.Fatal(err)
	}
	restore()
	sites := rec.Log()
	if len(sites) == 0 {
		t.Fatal("promotion performed no mutating ops")
	}

	for k, site := range sites {
		for _, torn := range []bool{false, true} {
			if torn && site.Op != fault.OpWrite {
				continue
			}
			dir := t.TempDir()
			path := filepath.Join(dir, "catalog.tail")
			write(path)
			inj := fault.NewInjector(nil)
			inj.CrashAt(k, torn)
			restore := SetFS(inj)
			if err := AppendTail(path, "gps", newCols, 9); err == nil {
				restore()
				t.Fatalf("site %d: crash-armed append succeeded", k)
			}
			restore()
			recs, _, err := LoadTail(path)
			if err != nil {
				t.Fatalf("site %d (%s, torn=%t): post-crash load: %v", k, site.Op, torn, err)
			}
			if len(recs) != 2 && len(recs) != 3 {
				t.Fatalf("site %d (%s, torn=%t): %d records after crash, want 2 or 3", k, site.Op, torn, len(recs))
			}
			for i, want := range legacy {
				got := recs[i]
				if got.Table != want.Table || len(got.Cols) != len(want.Cols) {
					t.Fatalf("site %d: legacy record %d mangled: %+v", k, i, got)
				}
				for c := range want.Cols {
					for r := range want.Cols[c] {
						if got.Cols[c][r] != want.Cols[c][r] {
							t.Fatalf("site %d: legacy record %d col %d row %d: %v != %v",
								k, i, c, r, got.Cols[c][r], want.Cols[c][r])
						}
					}
				}
			}
			if len(recs) == 3 && recs[2].Cols[0][0] != 7 {
				t.Fatalf("site %d: appended record mangled: %+v", k, recs[2])
			}
		}
	}
}
