package snapshot

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestTailRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.tail")
	batches := []struct {
		table string
		cols  [][]float64
	}{
		{"gps", [][]float64{{1, 2, 3}, {4, 5, 6}}},
		{"gps", [][]float64{{math.NaN(), math.Inf(1)}, {7, -0.0}}},
		{"other", [][]float64{{9}, {10}, {11}}},
	}
	for _, b := range batches {
		if err := AppendTail(path, b.table, b.cols); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := LoadTail(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(batches) {
		t.Fatalf("loaded %d records, wrote %d", len(recs), len(batches))
	}
	for i, b := range batches {
		if recs[i].Table != b.table {
			t.Fatalf("record %d table %q, want %q", i, recs[i].Table, b.table)
		}
		if len(recs[i].Cols) != len(b.cols) {
			t.Fatalf("record %d has %d cols, want %d", i, len(recs[i].Cols), len(b.cols))
		}
		for ci := range b.cols {
			for ri := range b.cols[ci] {
				got, want := recs[i].Cols[ci][ri], b.cols[ci][ri]
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("record %d col %d row %d: %g != %g", i, ci, ri, got, want)
				}
			}
		}
	}
}

func TestTailMissingIsEmpty(t *testing.T) {
	recs, err := LoadTail(filepath.Join(t.TempDir(), "nope.tail"))
	if err != nil || recs != nil {
		t.Fatalf("missing tail: recs %v err %v, want nil/nil", recs, err)
	}
}

// TestTailTornFinalRecordDropped simulates a crash mid-append: every
// truncation point inside the final record must load cleanly with that
// record dropped and every earlier record intact.
func TestTailTornFinalRecordDropped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.tail")
	if err := AppendTail(path, "gps", [][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := AppendTail(path, "gps", [][]float64{{5, 6, 7}, {8, 9, 10}}); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(whole); cut < len(full); cut++ {
		torn := filepath.Join(dir, "torn.tail")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := LoadTail(torn)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(recs) != 1 || len(recs[0].Cols[0]) != 2 {
			t.Fatalf("cut at %d: got %d records, want the 1 intact one", cut, len(recs))
		}
	}
}

// TestTailCorruptionRejected flips one byte inside a complete record's
// payload: the CRC must catch it and fail the load (unlike a torn
// tail, this is not a crash artifact).
func TestTailCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.tail")
	if err := AppendTail(path, "gps", [][]float64{{1, 2, 3}, {4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte (inside the record, past header + frame len).
	raw[tailHeaderLen+8+4] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTail(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted tail loaded: err %v, want ErrCorrupt", err)
	}
}

func TestTailVersionSkewRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.tail")
	if err := AppendTail(path, "gps", [][]float64{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(raw[4:8], TailFormatVersion+1)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTail(path); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("version-skewed tail loaded: err %v, want ErrVersionSkew", err)
	}
}

func TestRemoveTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.tail")
	if err := RemoveTail(path); err != nil {
		t.Fatalf("removing a missing tail: %v", err)
	}
	if err := AppendTail(path, "gps", [][]float64{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if err := RemoveTail(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("tail still present after RemoveTail")
	}
}
