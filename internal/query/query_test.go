package query

import (
	"errors"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/store"
	"repro/internal/viztime"
)

// fixedModel makes latency exactly n microseconds per tuple with zero
// startup, so tests can pick budgets that admit exact tuple counts.
type fixedModel struct{}

func (fixedModel) Name() string { return "fixed" }
func (fixedModel) Time(n int) time.Duration {
	return time.Duration(n) * time.Microsecond
}

func setup(t *testing.T) (*store.Store, *Planner) {
	t.Helper()
	st := store.New()
	base, err := st.CreateTable("base", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	// 100 base points on a diagonal.
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i)
	}
	if err := base.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	// Samples of sizes 10 and 50.
	for _, size := range []int{10, 50} {
		pts := make([]geom.Point, size)
		for i := range pts {
			pts[i] = geom.Pt(float64(i*100/size), float64(i*100/size))
		}
		name := names(size)
		if err := LoadSample(st, name, store.SampleMeta{
			Source: "base", Method: "vas", XCol: "x", YCol: "y",
		}, pts, nil); err != nil {
			t.Fatal(err)
		}
	}
	return st, NewPlanner(st, fixedModel{})
}

func names(size int) string {
	if size == 10 {
		return "base_vas_10"
	}
	return "base_vas_50"
}

func TestPlannerPicksLargestFittingSample(t *testing.T) {
	_, pl := setup(t)
	// Budget admits 60 tuples -> the 50-point sample.
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: 60 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sample.Size != 50 {
		t.Errorf("served sample size %d, want 50", resp.Sample.Size)
	}
	// Budget admits 20 tuples -> the 10-point sample.
	resp, err = pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: 20 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sample.Size != 10 {
		t.Errorf("served sample size %d, want 10", resp.Sample.Size)
	}
}

func TestPlannerBudgetTooSmall(t *testing.T) {
	_, pl := setup(t)
	_, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: 5 * time.Microsecond})
	if !errors.Is(err, ErrNoSampleFits) {
		t.Errorf("err = %v, want ErrNoSampleFits", err)
	}
}

func TestPlannerViewportFilter(t *testing.T) {
	_, pl := setup(t)
	vp := geom.Rect{MinX: 0, MinY: 0, MaxX: 30, MaxY: 30}
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Viewport: vp, Budget: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range resp.Points {
		if !vp.Contains(p) {
			t.Fatalf("point %v outside viewport", p)
		}
	}
	if len(resp.Points) == 0 {
		t.Error("viewport scan returned nothing")
	}
}

func TestPlannerZeroViewportIsFullExtent(t *testing.T) {
	_, pl := setup(t)
	// Both the zero Rect and an explicitly empty Rect mean "no viewport
	// restriction": every sample row comes back.
	for _, vp := range []geom.Rect{{}, {MinX: 5, MinY: 5, MaxX: 4, MaxY: 4}} {
		resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Viewport: vp, Budget: 60 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Points) != resp.Sample.Size {
			t.Errorf("viewport %v: %d points, want full sample of %d", vp, len(resp.Points), resp.Sample.Size)
		}
	}
}

func TestPlannerTinyBudgets(t *testing.T) {
	_, pl := setup(t)
	// Budgets below the smallest sample (10 points at 1µs/tuple) must
	// fail with ErrNoSampleFits, down to and including zero... except
	// zero, which means "interactive default". Use 1ns for effectively
	// zero time.
	for _, budget := range []time.Duration{time.Nanosecond, 5 * time.Microsecond, 9 * time.Microsecond} {
		_, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: budget})
		if !errors.Is(err, ErrNoSampleFits) {
			t.Errorf("budget %v: err = %v, want ErrNoSampleFits", budget, err)
		}
	}
	// Exactly the smallest sample's cost fits.
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: 10 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sample.Size != 10 {
		t.Errorf("exact-fit budget served size %d, want 10", resp.Sample.Size)
	}
	// The exact-scan fallback still answers when no sample fits.
	exact, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: time.Nanosecond, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.ExactScan || len(exact.Points) != 100 {
		t.Errorf("exact fallback: exact=%v n=%d", exact.ExactScan, len(exact.Points))
	}
}

func TestChoose(t *testing.T) {
	_, pl := setup(t)
	meta, err := pl.Choose(Request{Table: "base", XCol: "x", YCol: "y", Budget: 60 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Size != 50 {
		t.Errorf("Choose size = %d, want 50", meta.Size)
	}
	if _, err := pl.Choose(Request{Table: "base", XCol: "x", YCol: "y", Budget: 5 * time.Microsecond}); !errors.Is(err, ErrNoSampleFits) {
		t.Errorf("tiny budget Choose err = %v, want ErrNoSampleFits", err)
	}
	if _, err := pl.Choose(Request{XCol: "x", YCol: "y"}); err == nil {
		t.Error("missing table: want error")
	}
}

func TestPlannerExactScan(t *testing.T) {
	_, pl := setup(t)
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.ExactScan || len(resp.Points) != 100 {
		t.Errorf("exact scan: exact=%v n=%d", resp.ExactScan, len(resp.Points))
	}
}

func TestPlannerDefaultBudgetIsInteractive(t *testing.T) {
	st := store.New()
	base, _ := st.CreateTable("base", "x", "y")
	base.BulkLoad([]float64{1}, []float64{1})
	pts := []geom.Point{geom.Pt(1, 1)}
	LoadSample(st, "s", store.SampleMeta{Source: "base", Method: "vas", XCol: "x", YCol: "y"}, pts, nil)
	pl := NewPlanner(st, viztime.Tableau())
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PredictedTime > viztime.InteractiveLimit {
		t.Errorf("default budget exceeded the interactive limit: %v", resp.PredictedTime)
	}
}

func TestPlannerValidation(t *testing.T) {
	_, pl := setup(t)
	if _, err := pl.Plan(Request{XCol: "x", YCol: "y"}); err == nil {
		t.Error("missing table: want error")
	}
	if _, err := pl.Plan(Request{Table: "nope", XCol: "x", YCol: "y", Exact: true}); err == nil {
		t.Error("unknown table: want error")
	}
	if _, err := pl.Plan(Request{Table: "base", XCol: "zz", YCol: "y", Exact: true}); err == nil {
		t.Error("unknown column: want error")
	}
}

func TestPlannerNoSamplesRegistered(t *testing.T) {
	st := store.New()
	base, _ := st.CreateTable("lonely", "x", "y")
	base.BulkLoad([]float64{1}, []float64{2})
	pl := NewPlanner(st, fixedModel{})
	// An existing table with no samples is "nothing can serve this"
	// (ErrNoSampleFits); an unknown table is a lookup failure
	// (store.ErrNotFound). The HTTP layer maps these to 422 vs 404.
	if _, err := pl.Plan(Request{Table: "lonely", XCol: "x", YCol: "y"}); !errors.Is(err, ErrNoSampleFits) {
		t.Errorf("no samples: err = %v, want ErrNoSampleFits", err)
	}
	if _, err := pl.Plan(Request{Table: "ghost", XCol: "x", YCol: "y"}); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("unknown table: err = %v, want store.ErrNotFound", err)
	}
}

func TestLoadSampleWithDensity(t *testing.T) {
	st := store.New()
	base, _ := st.CreateTable("base", "x", "y")
	base.BulkLoad([]float64{0, 10}, []float64{0, 10})
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)}
	counts := []int64{7, 3}
	if err := LoadSample(st, "ws", store.SampleMeta{
		Source: "base", Method: "vas", XCol: "x", YCol: "y",
	}, pts, counts); err != nil {
		t.Fatal(err)
	}
	metas := st.SamplesOf("base")
	if len(metas) != 1 || !metas[0].HasDensity || metas[0].Size != 2 {
		t.Fatalf("meta = %+v", metas)
	}
	pl := NewPlanner(st, fixedModel{})
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Values) != 2 || resp.Values[0] != 7 {
		t.Errorf("density values = %v", resp.Values)
	}
	// Mismatched counts are rejected.
	if err := LoadSample(st, "bad", store.SampleMeta{Source: "base", XCol: "x", YCol: "y"}, pts, []int64{1}); err == nil {
		t.Error("count length mismatch: want error")
	}
}
