package query

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/store"
	"repro/internal/viztime"
)

// fixedModel makes latency exactly n microseconds per tuple with zero
// startup, so tests can pick budgets that admit exact tuple counts.
type fixedModel struct{}

func (fixedModel) Name() string { return "fixed" }
func (fixedModel) Time(n int) time.Duration {
	return time.Duration(n) * time.Microsecond
}

func setup(t *testing.T) (*store.Store, *Planner) {
	t.Helper()
	st := store.New()
	base, err := st.CreateTable("base", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	// 100 base points on a diagonal.
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i)
	}
	if err := base.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	// Samples of sizes 10 and 50.
	for _, size := range []int{10, 50} {
		pts := make([]geom.Point, size)
		for i := range pts {
			pts[i] = geom.Pt(float64(i*100/size), float64(i*100/size))
		}
		name := names(size)
		if err := LoadSample(st, name, store.SampleMeta{
			Source: "base", Method: "vas", XCol: "x", YCol: "y",
		}, pts, nil); err != nil {
			t.Fatal(err)
		}
	}
	return st, NewPlanner(st, fixedModel{})
}

func names(size int) string {
	if size == 10 {
		return "base_vas_10"
	}
	return "base_vas_50"
}

func TestPlannerPicksLargestFittingSample(t *testing.T) {
	_, pl := setup(t)
	// Budget admits 60 tuples -> the 50-point sample.
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: 60 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sample.Size != 50 {
		t.Errorf("served sample size %d, want 50", resp.Sample.Size)
	}
	// Budget admits 20 tuples -> the 10-point sample.
	resp, err = pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: 20 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sample.Size != 10 {
		t.Errorf("served sample size %d, want 10", resp.Sample.Size)
	}
}

func TestPlannerBudgetTooSmall(t *testing.T) {
	_, pl := setup(t)
	_, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: 5 * time.Microsecond})
	if !errors.Is(err, ErrNoSampleFits) {
		t.Errorf("err = %v, want ErrNoSampleFits", err)
	}
}

func TestPlannerViewportFilter(t *testing.T) {
	_, pl := setup(t)
	vp := geom.Rect{MinX: 0, MinY: 0, MaxX: 30, MaxY: 30}
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Viewport: vp, Budget: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range resp.Points {
		if !vp.Contains(p) {
			t.Fatalf("point %v outside viewport", p)
		}
	}
	if len(resp.Points) == 0 {
		t.Error("viewport scan returned nothing")
	}
}

func TestPlannerZeroViewportIsFullExtent(t *testing.T) {
	_, pl := setup(t)
	// Both the zero Rect and an explicitly empty Rect mean "no viewport
	// restriction": every sample row comes back.
	for _, vp := range []geom.Rect{{}, {MinX: 5, MinY: 5, MaxX: 4, MaxY: 4}} {
		resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Viewport: vp, Budget: 60 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Points) != resp.Sample.Size {
			t.Errorf("viewport %v: %d points, want full sample of %d", vp, len(resp.Points), resp.Sample.Size)
		}
	}
}

func TestPlannerTinyBudgets(t *testing.T) {
	_, pl := setup(t)
	// Budgets below the smallest sample (10 points at 1µs/tuple) must
	// fail with ErrNoSampleFits, down to and including zero... except
	// zero, which means "interactive default". Use 1ns for effectively
	// zero time.
	for _, budget := range []time.Duration{time.Nanosecond, 5 * time.Microsecond, 9 * time.Microsecond} {
		_, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: budget})
		if !errors.Is(err, ErrNoSampleFits) {
			t.Errorf("budget %v: err = %v, want ErrNoSampleFits", budget, err)
		}
	}
	// Exactly the smallest sample's cost fits.
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: 10 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sample.Size != 10 {
		t.Errorf("exact-fit budget served size %d, want 10", resp.Sample.Size)
	}
	// The exact-scan fallback still answers when no sample fits.
	exact, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: time.Nanosecond, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.ExactScan || len(exact.Points) != 100 {
		t.Errorf("exact fallback: exact=%v n=%d", exact.ExactScan, len(exact.Points))
	}
}

func TestChoose(t *testing.T) {
	_, pl := setup(t)
	meta, err := pl.Choose(Request{Table: "base", XCol: "x", YCol: "y", Budget: 60 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Size != 50 {
		t.Errorf("Choose size = %d, want 50", meta.Size)
	}
	if _, err := pl.Choose(Request{Table: "base", XCol: "x", YCol: "y", Budget: 5 * time.Microsecond}); !errors.Is(err, ErrNoSampleFits) {
		t.Errorf("tiny budget Choose err = %v, want ErrNoSampleFits", err)
	}
	if _, err := pl.Choose(Request{XCol: "x", YCol: "y"}); err == nil {
		t.Error("missing table: want error")
	}
}

func TestPlannerExactScan(t *testing.T) {
	_, pl := setup(t)
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.ExactScan || len(resp.Points) != 100 {
		t.Errorf("exact scan: exact=%v n=%d", resp.ExactScan, len(resp.Points))
	}
}

func TestPlannerDefaultBudgetIsInteractive(t *testing.T) {
	st := store.New()
	base, _ := st.CreateTable("base", "x", "y")
	base.BulkLoad([]float64{1}, []float64{1})
	pts := []geom.Point{geom.Pt(1, 1)}
	LoadSample(st, "s", store.SampleMeta{Source: "base", Method: "vas", XCol: "x", YCol: "y"}, pts, nil)
	pl := NewPlanner(st, viztime.Tableau())
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PredictedTime > viztime.InteractiveLimit {
		t.Errorf("default budget exceeded the interactive limit: %v", resp.PredictedTime)
	}
}

func TestPlannerValidation(t *testing.T) {
	_, pl := setup(t)
	if _, err := pl.Plan(Request{XCol: "x", YCol: "y"}); err == nil {
		t.Error("missing table: want error")
	}
	if _, err := pl.Plan(Request{Table: "nope", XCol: "x", YCol: "y", Exact: true}); err == nil {
		t.Error("unknown table: want error")
	}
	if _, err := pl.Plan(Request{Table: "base", XCol: "zz", YCol: "y", Exact: true}); err == nil {
		t.Error("unknown column: want error")
	}
}

func TestPlannerNoSamplesRegistered(t *testing.T) {
	st := store.New()
	base, _ := st.CreateTable("lonely", "x", "y")
	base.BulkLoad([]float64{1}, []float64{2})
	pl := NewPlanner(st, fixedModel{})
	// An existing table with no samples is "nothing can serve this"
	// (ErrNoSampleFits); an unknown table is a lookup failure
	// (store.ErrNotFound). The HTTP layer maps these to 422 vs 404.
	if _, err := pl.Plan(Request{Table: "lonely", XCol: "x", YCol: "y"}); !errors.Is(err, ErrNoSampleFits) {
		t.Errorf("no samples: err = %v, want ErrNoSampleFits", err)
	}
	if _, err := pl.Plan(Request{Table: "ghost", XCol: "x", YCol: "y"}); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("unknown table: err = %v, want store.ErrNotFound", err)
	}
}

// TestZeroRectViewportConvention is the regression test documenting the
// viewport convention shared by query and the vas façade: the zero
// geom.Rect — a degenerate point at the origin, the natural "unset"
// spelling for callers — means "full extent", NOT "only rows exactly at
// the origin". The store itself takes rectangles literally; the
// translation happens in viewportRows, and is exercised here against a
// table that does contain a row at the origin, so a literal reading
// would return exactly one point and fail.
func TestZeroRectViewportConvention(t *testing.T) {
	st := store.New()
	base, _ := st.CreateTable("base", "x", "y")
	if err := base.BulkLoad([]float64{0, 1, 2}, []float64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(2, 2)}
	if err := LoadSample(st, "s", store.SampleMeta{
		Source: "base", Method: "vas", XCol: "x", YCol: "y",
	}, pts, nil); err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(st, fixedModel{})
	for _, exact := range []bool{false, true} {
		resp, err := pl.Plan(Request{
			Table: "base", XCol: "x", YCol: "y",
			Viewport: geom.Rect{}, Budget: time.Second, Exact: exact,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Points) != 3 {
			t.Errorf("exact=%v: zero-Rect viewport returned %d points, want all 3", exact, len(resp.Points))
		}
	}
	// The store agrees: its zero-Rect convention is the same "no
	// restriction" fast path, so the two layers can never diverge on
	// what an unset viewport means (they used to: the store once read
	// the zero Rect as a literal point query at the origin).
	base, _ = st.Table("base")
	rows, err := base.ScanRect("x", "y", geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if start, end, ok := rows.AsRange(); !ok || start != 0 || end != 3 {
		t.Errorf("store-level zero Rect = range[%d,%d) ok=%v, want dense [0,3)", start, end, ok)
	}
}

// TestPlanWithFilters: filter predicates are pushed into the sample
// scan alongside the viewport and reported in the pruning stats, for
// sampled and exact plans alike.
func TestPlanWithFilters(t *testing.T) {
	_, pl := setup(t)
	// The 50-point sample lies on the diagonal x == y in [0, 100); keep
	// x in [40, 60) via a filter, no viewport.
	resp, err := pl.Plan(Request{
		Table: "base", XCol: "x", YCol: "y", Budget: 60 * time.Microsecond,
		Filters: []store.Pred{{Column: "x", Min: 40, Max: 59}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) == 0 || len(resp.Points) >= 50 {
		t.Fatalf("filtered plan returned %d of 50 sample points", len(resp.Points))
	}
	for _, p := range resp.Points {
		if p.X < 40 || p.X > 59 {
			t.Errorf("point %v escapes the filter band", p)
		}
	}
	if !resp.Scan.IndexProbe {
		t.Error("sample tables are indexed at publish; a filtered plan should probe")
	}

	// Viewport AND filter compose conjunctively.
	resp, err = pl.Plan(Request{
		Table: "base", XCol: "x", YCol: "y", Budget: 60 * time.Microsecond,
		Viewport: geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 50},
		Filters:  []store.Pred{{Column: "y", Min: 30, Max: 200}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range resp.Points {
		if p.Y < 30 || p.Y > 50 {
			t.Errorf("point %v escapes viewport ∩ filter", p)
		}
	}

	// Exact plans push the same filters into the base-table scan.
	resp, err = pl.Plan(Request{
		Table: "base", XCol: "x", YCol: "y", Exact: true,
		Filters: []store.Pred{{Column: "x", Min: 10, Max: 19}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 10 {
		t.Errorf("exact filtered plan returned %d points, want 10", len(resp.Points))
	}

	// A filter on a column the served sample lacks is a lookup error.
	if _, err := pl.Plan(Request{
		Table: "base", XCol: "x", YCol: "y", Budget: 60 * time.Microsecond,
		Filters: []store.Pred{{Column: "nope", Min: 0, Max: 1}},
	}); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("unknown filter column: err = %v, want ErrNotFound", err)
	}
}

// TestViewportRowsFullExtentAllocatesNothing pins the zero-allocation
// fast path: a full-extent request resolves to the store.All sentinel
// without materializing any row ids.
func TestViewportRowsFullExtentAllocatesNothing(t *testing.T) {
	st, pl := setup(t)
	base, err := st.Table("base")
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		rows, _, err := pl.viewportRows(context.Background(), base, "x", "y", geom.Rect{}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.IsAll() {
			t.Fatal("full extent should resolve to store.All")
		}
	})
	if allocs != 0 {
		t.Errorf("full-extent viewportRows allocated %.0f objects per run, want 0", allocs)
	}
}

// TestPlanPropagatesDensityGatherError covers the former silent
// degradation: a sample registered with HasDensity whose density column
// is missing must fail the plan, not quietly serve unweighted points.
func TestPlanPropagatesDensityGatherError(t *testing.T) {
	st := store.New()
	base, _ := st.CreateTable("base", "x", "y")
	if err := base.BulkLoad([]float64{0, 1}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	// A sample table claiming density but carrying only (x, y).
	bad, _ := st.CreateTable("bad", "x", "y")
	if err := bad.BulkLoad([]float64{0, 1}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterSample(store.SampleMeta{
		Table: "bad", Source: "base", Method: "vas",
		XCol: "x", YCol: "y", Size: 2, HasDensity: true,
	}); err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(st, fixedModel{})
	_, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: time.Second})
	if err == nil {
		t.Fatal("broken density column: want error, got silent unweighted output")
	}
	if !errors.Is(err, store.ErrNotFound) {
		t.Errorf("err = %v, want wrapped store.ErrNotFound", err)
	}
}

// TestLoadSampleReplacesExisting: re-publishing a sample under the same
// name replaces the old table and its catalog entry, so BuildSamples can
// refresh samples after a base-table reload instead of failing on the
// taken name or duplicating metadata.
func TestLoadSampleReplacesExisting(t *testing.T) {
	st := store.New()
	base, _ := st.CreateTable("base", "x", "y")
	if err := base.BulkLoad([]float64{0, 10}, []float64{0, 10}); err != nil {
		t.Fatal(err)
	}
	meta := store.SampleMeta{Source: "base", Method: "vas", XCol: "x", YCol: "y"}
	if err := LoadSample(st, "s", meta, []geom.Point{geom.Pt(1, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	// Replace with a bigger sample that also changes schema (adds density).
	pts := []geom.Point{geom.Pt(2, 2), geom.Pt(3, 3)}
	if err := LoadSample(st, "s", meta, pts, []int64{5, 7}); err != nil {
		t.Fatalf("re-publish: %v", err)
	}
	metas := st.SamplesOf("base")
	if len(metas) != 1 {
		t.Fatalf("catalog has %d entries for the sample, want 1: %+v", len(metas), metas)
	}
	if metas[0].Size != 2 || !metas[0].HasDensity {
		t.Errorf("replaced meta = %+v, want size 2 with density", metas[0])
	}
	pl := NewPlanner(st, fixedModel{})
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 2 || resp.Values[0] != 5 {
		t.Errorf("served points %v values %v, want the replacement sample", resp.Points, resp.Values)
	}
}

func TestLoadSampleWithDensity(t *testing.T) {
	st := store.New()
	base, _ := st.CreateTable("base", "x", "y")
	base.BulkLoad([]float64{0, 10}, []float64{0, 10})
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)}
	counts := []int64{7, 3}
	if err := LoadSample(st, "ws", store.SampleMeta{
		Source: "base", Method: "vas", XCol: "x", YCol: "y",
	}, pts, counts); err != nil {
		t.Fatal(err)
	}
	metas := st.SamplesOf("base")
	if len(metas) != 1 || !metas[0].HasDensity || metas[0].Size != 2 {
		t.Fatalf("meta = %+v", metas)
	}
	pl := NewPlanner(st, fixedModel{})
	resp, err := pl.Plan(Request{Table: "base", XCol: "x", YCol: "y", Budget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Values) != 2 || resp.Values[0] != 7 {
		t.Errorf("density values = %v", resp.Values)
	}
	// Mismatched counts are rejected.
	if err := LoadSample(st, "bad", store.SampleMeta{Source: "base", XCol: "x", YCol: "y"}, pts, []int64{1}); err == nil {
		t.Error("count length mismatch: want error")
	}
}
