// Package query is the data-reduction layer between the visualization tool
// and the store — the role ScalaR plays in the paper's related work and
// the deployment model of §II-D: a visualization request arrives with a
// latency budget; the planner converts the budget into a tuple count using
// the latency model, picks the largest registered sample that fits, scans
// it with the request's viewport predicates, and returns the points to
// render.
package query

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/viztime"
)

// ErrNoSampleFits is returned when even the smallest registered sample
// exceeds the latency budget.
var ErrNoSampleFits = errors.New("query: no sample fits the latency budget")

// Request is one visualization query from the tool.
type Request struct {
	// Table is the base table the user is visualizing.
	Table string
	// XCol, YCol are the plotted columns.
	XCol, YCol string
	// Viewport restricts the plot to a zoom region; the zero Rect (empty)
	// means the full extent.
	Viewport geom.Rect
	// Rects, when non-empty, restricts the plot to the UNION of several
	// zoom regions — the multi-viewport shape of comparison dashboards.
	// Each rectangle is probed separately and the row sets are unioned,
	// so a row inside two overlapping rectangles is returned once.
	// Mutually exclusive with Viewport: a request setting both is
	// rejected rather than guessing an intersection-vs-union intent.
	Rects []geom.Rect
	// Filters are extra conjunctive range predicates — time windows,
	// magnitude bands, categories — pushed down into the same index
	// probe that answers the viewport, where per-cell zone maps prune
	// cells no matching row can live in. Columns are resolved against
	// the served table (the chosen sample, or the base table for Exact),
	// so a filter column must exist there.
	Filters []store.Pred
	// Budget is the latency the tool is willing to spend; zero means the
	// interactive limit (2s).
	Budget time.Duration
	// Exact forces a full-table scan, bypassing samples (the "100%
	// sample" end of the §II-B tradeoff).
	Exact bool
}

// Response is the planner's answer.
type Response struct {
	// Points are the tuples to render.
	Points []geom.Point
	// Values carries the sample's density counts when the chosen sample
	// has density embedding, else nil.
	Values []float64
	// Sample is the metadata of the sample served, or the zero value for
	// an exact scan.
	Sample store.SampleMeta
	// ExactScan is true when the base table was scanned.
	ExactScan bool
	// PredictedTime is the latency-model estimate for rendering Points.
	PredictedTime time.Duration
	// PlanTime is how long planning+scan took inside the engine.
	PlanTime time.Duration
	// Scan reports how the row selection was answered — index probe vs
	// fallback, zone-map pruning for filtered queries, and how many
	// rows came out of delta buckets (appended but not yet compacted).
	Scan store.ScanStats
	// ServedRows is the LIVE row count of the table the answer was
	// scanned from (the chosen sample, or the base table for an exact
	// scan) — under live ingest, how current the served data is.
	// Tombstoned rows are excluded: after a delete the count drops with
	// the visible data, whether or not compaction has physically
	// reclaimed the rows yet. It is read just before the scan, so under
	// a concurrent append it can trail the scanned snapshot by a batch;
	// it never overstates currency.
	ServedRows int
}

// Planner answers visualization requests against a store.
type Planner struct {
	st    *store.Store
	model viztime.Model
}

// NewPlanner returns a planner using the latency model to convert budgets
// to tuple counts.
func NewPlanner(st *store.Store, model viztime.Model) *Planner {
	return &Planner{st: st, model: model}
}

// Plan answers one request.
func (pl *Planner) Plan(req Request) (*Response, error) {
	return pl.PlanCtx(context.Background(), req)
}

// PlanCtx is Plan with stage timing: when ctx carries an obs.Trace,
// sample selection is recorded as the plan span, row projection as the
// gather span, and the store scan contributes probe/residual spans.
// The trace also learns the base table and, for sampled answers, which
// sample was served.
func (pl *Planner) PlanCtx(ctx context.Context, req Request) (*Response, error) {
	tr := obs.FromContext(ctx)
	start := time.Now()
	if req.Table == "" || req.XCol == "" || req.YCol == "" {
		return nil, errors.New("query: Table, XCol and YCol are required")
	}
	if len(req.Rects) > 0 && req.Viewport != (geom.Rect{}) {
		return nil, errors.New("query: Viewport and Rects are mutually exclusive")
	}
	tr.SetTable(req.Table)

	if req.Exact {
		sp := tr.StartSpan(obs.StagePlan)
		base, err := pl.st.Table(req.Table)
		if err != nil {
			sp.End()
			return nil, err
		}
		// Before the scan: a count taken after could exceed the scanned
		// snapshot under concurrent appends and overstate currency.
		servedRows := base.LiveRows()
		sp.End()
		rows, scanStats, err := pl.viewportRows(ctx, base, req.XCol, req.YCol, req.Viewport, req.Rects, req.Filters)
		if err != nil {
			return nil, err
		}
		sp = tr.StartSpan(obs.StageGather)
		pts, err := base.Points(req.XCol, req.YCol, rows)
		sp.End()
		if err != nil {
			return nil, err
		}
		return &Response{
			Points:        pts,
			ExactScan:     true,
			PredictedTime: pl.model.Time(len(pts)),
			PlanTime:      time.Since(start),
			Scan:          scanStats,
			ServedRows:    servedRows,
		}, nil
	}

	// Choose is the single home of budget defaulting and sample
	// selection, so /v1/query and the tile cache keying (which calls
	// Choose directly) can never disagree about which sample a budget
	// resolves to. A sample replacement (LoadSample drops and recreates
	// the table) can race between selection and lookup; re-resolving
	// against the updated catalog absorbs it instead of surfacing a
	// spurious not-found for a table that exists.
	sp := tr.StartSpan(obs.StagePlan)
	var (
		chosen store.SampleMeta
		st     *store.Table
		err    error
	)
	for attempt := 0; ; attempt++ {
		chosen, err = pl.Choose(req)
		if err != nil {
			sp.End()
			return nil, err
		}
		st, err = pl.st.Table(chosen.Table)
		if err == nil {
			break
		}
		if attempt == 2 || !errors.Is(err, store.ErrNotFound) {
			sp.End()
			return nil, err
		}
	}
	tr.Annotate("sample", chosen.Table)
	// One index probe (or fallback scan) serves both the point projection
	// and the density gather; this is the serving hot path.
	servedRows := st.LiveRows()
	sp.End()
	rows, scanStats, err := pl.viewportRows(ctx, st, chosen.XCol, chosen.YCol, req.Viewport, req.Rects, req.Filters)
	if err != nil {
		return nil, err
	}
	sp = tr.StartSpan(obs.StageGather)
	pts, err := st.Points(chosen.XCol, chosen.YCol, rows)
	sp.End()
	if err != nil {
		return nil, err
	}
	resp := &Response{
		Points:        pts,
		Sample:        chosen,
		PredictedTime: pl.model.Time(len(pts)),
		PlanTime:      time.Since(start),
		Scan:          scanStats,
		ServedRows:    servedRows,
	}
	if chosen.HasDensity {
		// A sample registered with HasDensity whose density column cannot
		// be gathered is broken data, not a cue to silently degrade to
		// unweighted output.
		sp = tr.StartSpan(obs.StageGather)
		vals, err := st.Gather("density", rows)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("query: sample %q density gather: %w", chosen.Table, err)
		}
		// Points and Gather each read their own snapshot; a reload of the
		// sample table between the two can desynchronize them (the All
		// sentinel in particular adapts to whatever size it finds).
		// Misaligned weights corrupt the rendering, so fail instead.
		if len(vals) != len(pts) {
			return nil, fmt.Errorf("query: sample %q reloaded mid-plan: %d density values for %d points", chosen.Table, len(vals), len(pts))
		}
		resp.Values = vals
	}
	return resp, nil
}

// NearestRequest is one k-nearest-neighbors request.
type NearestRequest struct {
	// Table is the base table to answer from. kNN is always exact — the
	// answer is k rows, so there is no latency/size tradeoff to plan,
	// and the nearest neighbor in a sample is generally not the nearest
	// neighbor in the data.
	Table string
	// XCol, YCol name the coordinate pair.
	XCol, YCol string
	// X, Y is the query point; K how many neighbors to return.
	X, Y float64
	K    int
	// Filters restrict candidates exactly like query filters: a
	// neighbor must satisfy every range predicate.
	Filters []store.Pred
}

// NearestResponse is the kNN answer.
type NearestResponse struct {
	// Neighbors is ascending by (distance, row id); fewer than K when
	// fewer rows match.
	Neighbors []store.Neighbor
	// PlanTime is the total in-engine time.
	PlanTime time.Duration
	// Scan reports how the candidate set was narrowed (tree descent
	// leaves touched/pruned vs brute-force rows examined).
	Scan store.ScanStats
	// ServedRows is the base table's live row count before the search.
	ServedRows int
}

// Nearest answers one kNN request.
func (pl *Planner) Nearest(req NearestRequest) (*NearestResponse, error) {
	return pl.NearestCtx(context.Background(), req)
}

// NearestCtx is Nearest with stage timing: the index descent (or
// brute-force sweep) is recorded as the probe span on any trace ctx
// carries.
func (pl *Planner) NearestCtx(ctx context.Context, req NearestRequest) (*NearestResponse, error) {
	tr := obs.FromContext(ctx)
	start := time.Now()
	if req.Table == "" || req.XCol == "" || req.YCol == "" {
		return nil, errors.New("query: Table, XCol and YCol are required")
	}
	tr.SetTable(req.Table)
	base, err := pl.st.Table(req.Table)
	if err != nil {
		return nil, err
	}
	servedRows := base.LiveRows()
	ns, scanStats, err := base.NearestCtx(ctx, req.XCol, req.YCol, req.X, req.Y, req.K, req.Filters)
	if err != nil {
		return nil, err
	}
	return &NearestResponse{
		Neighbors:  ns,
		PlanTime:   time.Since(start),
		Scan:       scanStats,
		ServedRows: servedRows,
	}, nil
}

// Choose resolves the sample the planner would serve for req without
// scanning it. The tile server uses this to build cache keys: a cache hit
// must not pay for a scan, so sample selection is separated from data
// access.
func (pl *Planner) Choose(req Request) (store.SampleMeta, error) {
	if req.Table == "" || req.XCol == "" || req.YCol == "" {
		return store.SampleMeta{}, errors.New("query: Table, XCol and YCol are required")
	}
	budget := req.Budget
	if budget <= 0 {
		budget = viztime.InteractiveLimit
	}
	return pl.chooseSample(req, viztime.TuplesWithin(pl.model, budget))
}

// chooseSample picks the largest sample of the request's column pair whose
// size fits the tuple budget. Samples are registered ascending by size.
func (pl *Planner) chooseSample(req Request, maxTuples int) (store.SampleMeta, error) {
	metas := pl.st.SamplesOf(req.Table)
	if len(metas) == 0 {
		// Distinguish "no such table" (a lookup error, store.ErrNotFound)
		// from "table exists but nothing can serve it" (ErrNoSampleFits),
		// so the HTTP layer maps them to 404 vs 422.
		if _, err := pl.st.Table(req.Table); err != nil {
			return store.SampleMeta{}, err
		}
		return store.SampleMeta{}, fmt.Errorf("%w: table %q has no registered samples", ErrNoSampleFits, req.Table)
	}
	var best store.SampleMeta
	found := false
	for _, m := range metas {
		if m.XCol != req.XCol || m.YCol != req.YCol {
			continue
		}
		if m.Size <= maxTuples {
			best = m
			found = true
		}
	}
	if !found {
		return store.SampleMeta{}, fmt.Errorf("%w: budget admits %d tuples", ErrNoSampleFits, maxTuples)
	}
	return best, nil
}

func (pl *Planner) viewportRows(ctx context.Context, t *store.Table, xCol, yCol string, vp geom.Rect, rects []geom.Rect, filters []store.Pred) (store.RowSet, store.ScanStats, error) {
	// A multi-viewport request probes each rectangle and unions the row
	// sets inside the store (one snapshot discipline per probe, stats
	// summed across probes).
	if len(rects) > 0 {
		return t.ScanRectsCtx(ctx, xCol, yCol, rects, filters)
	}
	// Both the zero value (the natural "unset" spelling for callers) and
	// a properly empty rectangle mean "no viewport restriction". With no
	// filters either, the full extent is the store.All sentinel:
	// projections walk the columns directly and no row ids are ever
	// materialized (the zero-allocation fast path).
	if vp == (geom.Rect{}) || vp.IsEmpty() {
		if len(filters) == 0 {
			return store.All, store.ScanStats{}, nil
		}
		// Filters without a viewport: the store's zero-Rect convention
		// is the same "no restriction", so the probe walks the whole
		// grid with zone maps pruning non-matching cells.
		vp = geom.Rect{}
	}
	// An index probe when the sample's column pair is indexed (every
	// table published through LoadSample or the vas façade is), a
	// sharded linear scan otherwise. Filters ride down into the probe.
	return t.ScanRectWhereCtx(ctx, xCol, yCol, vp, filters)
}

// LoadSample materializes a sample as a store table named name with
// columns (x, y[, density]) and registers its lineage. It is the bridge
// the offline builder (cmd/vasgen, the vas façade) uses to publish samples
// into the serving store. The table is fully built — loaded and indexed
// — before it is published, and publishing atomically replaces any
// previous sample of the same name together with its catalog entry, so
// a rebuild after a base-table reload refreshes in place and queries
// racing the replacement always find a complete catalog.
func LoadSample(st *store.Store, name string, meta store.SampleMeta, pts []geom.Point, density []int64) error {
	cols := []string{"x", "y"}
	if density != nil {
		if len(density) != len(pts) {
			return fmt.Errorf("query: %d density counts for %d points", len(density), len(pts))
		}
		cols = append(cols, "density")
	}
	t, err := store.NewTable(name, cols...)
	if err != nil {
		return err
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Y
	}
	loadCols := [][]float64{xs, ys}
	if density != nil {
		ds := make([]float64, len(density))
		for i, d := range density {
			ds[i] = float64(d)
		}
		loadCols = append(loadCols, ds)
	}
	if err := t.BulkLoad(loadCols...); err != nil {
		return err
	}
	// Publish-time indexing: every sample table answers viewport queries
	// as index probes from its first request.
	if err := t.IndexOn("x", "y"); err != nil {
		return err
	}
	meta.Table = name
	meta.Size = len(pts)
	meta.HasDensity = density != nil
	return st.PublishSample(t, meta)
}
