package vas_test

// End-to-end tests of the retention layer (ISSUE 8 acceptance): deletes
// issued through the catalog API and through POST /v1/delete land in
// the snapshot tail log as predicate records, a restart replays them IN
// ORDER with the appends around them (a row appended into a region
// after that region was deleted must survive), a full save folds the
// tombstones into the base file, and multi-viewport Union queries
// answer identically before and after the round trip.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"

	vas "repro"
)

func TestRetentionSnapshotReplay(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 3000, Seed: 17})
	cat := newSnapshotCatalog(t, d)
	dir := t.TempDir()
	t.Cleanup(cat.WaitBackground)
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	// The Geolife-like data lives at China scale, so everything around
	// (1000, 1000) is exclusively ours.
	probe := vas.Rect{MinX: 999, MinY: 999, MaxX: 1006, MaxY: 1006}
	pts := []vas.Point{
		vas.Pt(1000, 1000), vas.Pt(1001, 1001), vas.Pt(1002, 1002),
		vas.Pt(1003, 1003), vas.Pt(1004, 1004),
	}
	if err := cat.Append("gps", pts); err != nil {
		t.Fatal(err)
	}
	// Catalog-API delete: takes 1000 and 1001.
	n, err := cat.DeleteRect("gps", vas.Rect{MinX: 999.5, MinY: 999.5, MaxX: 1001.5, MaxY: 1001.5})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("DeleteRect removed %d rows, want 2", n)
	}
	// HTTP delete: takes 1003.
	srv := httptest.NewServer(cat.Handler())
	resp, err := http.Post(srv.URL+"/v1/delete/gps", "application/json",
		strings.NewReader(`{"rect": {"minX": 1002.5, "minY": 1002.5, "maxX": 1003.5, "maxY": 1003.5}}`))
	if err != nil {
		t.Fatal(err)
	}
	var dres struct {
		Deleted int `json:"deleted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dres); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.Close()
	if resp.StatusCode != http.StatusOK || dres.Deleted != 1 {
		t.Fatalf("HTTP delete: status %d, deleted %d, want 200/1", resp.StatusCode, dres.Deleted)
	}
	// Appended AFTER the delete, inside the deleted rectangle: replay
	// order decides whether this row lives. It must.
	if err := cat.Append("gps", []vas.Point{vas.Pt(1000.25, 1000.25)}); err != nil {
		t.Fatal(err)
	}

	want, err := cat.QueryExact("gps", probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Points) != 3 { // 1002, 1004, and the post-delete 1000.25
		t.Fatalf("pre-restart probe sees %d points, want 3: %v", len(want.Points), want.Points)
	}
	wantFull, err := cat.QueryExact("gps", vas.Rect{})
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": replay base + tail into a fresh catalog.
	restored := vas.NewCatalog()
	if err := restored.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	got, err := restored.QueryExact("gps", probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("restored probe sees %d points, want %d: %v", len(got.Points), len(want.Points), got.Points)
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("restored point %d = %v, want %v", i, got.Points[i], want.Points[i])
		}
	}
	gotFull, err := restored.QueryExact("gps", vas.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotFull.Points) != len(wantFull.Points) {
		t.Fatalf("restored full extent = %d points, want %d", len(gotFull.Points), len(wantFull.Points))
	}

	// Union queries answer the same against the restored catalog: two
	// disjoint viewports pinned against their single-viewport answers.
	r1 := vas.Rect{MinX: 999, MinY: 999, MaxX: 1002.5, MaxY: 1002.5}
	r2 := vas.Rect{MinX: 1003.5, MinY: 1003.5, MaxX: 1006, MaxY: 1006}
	u, err := restored.QueryRects("gps", []vas.Rect{r1, r2}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := restored.QueryRects("gps", []vas.Rect{r1}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.QueryRects("gps", []vas.Rect{r2}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Points) != len(a.Points)+len(b.Points) {
		t.Fatalf("union = %d points, singles = %d + %d", len(u.Points), len(a.Points), len(b.Points))
	}

	// A full save folds tombstones and appends into the base file and
	// removes the tail; a second restart needs no replay and serves the
	// same rows.
	if err := restored.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, vas.TailFile)); !os.IsNotExist(err) {
		t.Fatal("full save left the tail log behind")
	}
	again := vas.NewCatalog()
	if err := again.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	got2, err := again.QueryExact("gps", probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Points) != len(want.Points) {
		t.Fatalf("after fold + reload: %d points, want %d", len(got2.Points), len(want.Points))
	}
}

// TestDeleteDurabilityDegradation mirrors the append degradation
// contract for deletes: with a broken tail log the rows still vanish
// from serving, the error is surfaced, and SnapshotErr flips.
func TestDeleteDurabilityDegradation(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 2000, Seed: 31})
	cat := newSnapshotCatalog(t, d)
	dir := t.TempDir()
	t.Cleanup(cat.WaitBackground)
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if err := cat.Append("gps", []vas.Point{vas.Pt(1000, 1000)}); err != nil {
		t.Fatal(err)
	}
	// Break the log the same way the append degradation test does.
	if err := os.RemoveAll(filepath.Join(dir, vas.TailFile)); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, vas.TailFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, vas.TailFile, "block"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := cat.DeleteRect("gps", vas.Rect{MinX: 999, MinY: 999, MaxX: 1001, MaxY: 1001})
	if err == nil {
		t.Fatal("delete with a broken tail log reported durable success")
	}
	if n != 1 {
		t.Fatalf("degraded delete tombstoned %d rows, want 1", n)
	}
	if cat.SnapshotErr() == nil {
		t.Fatal("degradation not recorded")
	}
	// The delete is live regardless.
	got, qerr := cat.QueryExact("gps", vas.Rect{MinX: 999, MinY: 999, MaxX: 1001, MaxY: 1001})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if len(got.Points) != 0 {
		t.Fatalf("deleted row still serving under degradation: %d points", len(got.Points))
	}
	// A delete that matches nothing must NOT touch the broken log (a
	// no-op is not worth a durability error).
	if _, err := cat.DeleteRect("gps", vas.Rect{MinX: 5000, MinY: 5000, MaxX: 5001, MaxY: 5001}); err != nil {
		t.Fatalf("no-op delete reported an error: %v", err)
	}
}

// TestCatalogTTLValidation covers the catalog-level TTL surface; the
// sweep mechanics are pinned in the store tests (TestTTLCompaction).
func TestCatalogTTLValidation(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 500, Seed: 37})
	cat := vas.NewCatalog()
	if err := cat.LoadTable("gps", d.Points); err != nil {
		t.Fatal(err)
	}
	if err := cat.SetTTL("ghost", "x", time.Hour); err == nil {
		t.Fatal("TTL on a missing table was accepted")
	}
	if err := cat.SetTTL("gps", "ghost", time.Hour); err == nil {
		t.Fatal("TTL on a missing column was accepted")
	}
	if err := cat.SetTTL("gps", "x", time.Hour); err != nil {
		t.Fatalf("valid TTL rejected: %v", err)
	}
	if err := cat.SetTTL("gps", "x", 0); err != nil {
		t.Fatalf("clearing the TTL rejected: %v", err)
	}
}
