# Development targets. CI runs fmt/vet/build/test plus a one-iteration
# bench smoke so the serving benchmarks cannot rot.

GO ?= go
# The serving benchmarks of the read path (internal/store): index probe
# vs linear baseline, parallel fallback scan, full-extent
# zero-row-id-allocation projection, the predicate-pushdown probe
# (zone-map pruning) vs the filtered linear baseline, the live-ingest
# scans (delta-index probe vs seed-state linear tail) plus append
# throughput, the batch-vs-scalar kernel comparison inside
# ScanRectFiltered (residual shapes report kernel_speedup), the
# probe parallelism sweep, the retention path: the filtered probe
# with 10% of rows tombstoned (vs clean baseline and post-compaction)
# plus the two-viewport union scan — and the index-backend A/B: the
# same clustered 1M-row table under a cluster-clipping 1% filtered
# viewport served by the grid vs the STR R-tree, plus kNN latency
# through the tree descent vs the brute-force fallback.
SERVING_BENCH ?= QueryViewport|ExactScanParallel|QueryFullExtentProjection|ScanRectFiltered|ScanLinearFiltered|ScanAfterAppend|AppendThroughput|ProbeParallelSweep|ScanAfterDelete|ScanRectsUnion|SkewedViewport|Nearest
# The cold-start benchmarks (root package): bringing a 1M-row catalog
# up by full offline rebuild vs restoring it from a snapshot file —
# plus the parallel HTTP query path, which guards the observability
# middleware (tracing must stay free when nobody is watching).
SNAPSHOT_BENCH ?= ColdStart|ServerQueryParallel

.PHONY: all build test race bench bench-smoke fmt vet fuzz-smoke obs-smoke torture-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# bench runs the serving + cold-start benchmarks and commits the
# numbers as BENCH_PR10.json (the repo's benchmark trajectory;
# BENCH_PR2.json .. BENCH_PR9.json are the previous points on it).
# PR 10 threads cooperative cancellation checks through the scan
# kernels; the ScanRectFiltered shapes double as the guard that the
# polls stay within ±5% of the PR 9 numbers.
bench:
	$(GO) test -run '^$$' -bench '$(SERVING_BENCH)' -benchmem ./internal/store | tee /tmp/bench_serving.txt
	$(GO) test -run '^$$' -bench '$(SNAPSHOT_BENCH)' -benchmem . | tee -a /tmp/bench_serving.txt
	$(GO) run ./cmd/bench2json < /tmp/bench_serving.txt > BENCH_PR10.json
	@echo wrote BENCH_PR10.json

# bench-smoke is the CI guard: every committed benchmark must still
# compile and complete one iteration.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(SERVING_BENCH)' -benchtime 1x ./internal/store
	$(GO) test -run '^$$' -bench '$(SNAPSHOT_BENCH)' -benchtime 1x .

# obs-smoke exercises the observability surface end to end: the
# exposition-format checker under concurrent traffic and -race, the
# slow-query log, tile scan headers, the degraded-tail gauge, and the
# zero-allocation no-trace span contract.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestMetricsStrictUnderConcurrentTraffic|TestSlowLogEndpoint|TestTileScanHeaders' ./internal/server
	$(GO) test -race -count=1 ./internal/obs
	$(GO) test -count=1 -run 'TestObsSlowQueryEndToEnd|TestTailLogDegradedGaugeEndToEnd' .

# fuzz-smoke gives the RowSet algebra, snapshot decoder, and kernel
# equivalence fuzzers a short budget against their checked-in corpora
# (testdata/fuzz); CI runs it on every push. kernel-alloc locks the
# zero-allocation contract of the selection kernels.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzRowSetAlgebra -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzKernelEquivalence -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime 10s ./internal/snapshot

.PHONY: kernel-alloc
kernel-alloc:
	$(GO) test -count=1 -run TestKernelZeroAlloc ./internal/store

# torture-smoke runs the resilience suite under -race: the
# crash-recovery torture test (a crash injected at every file-op site
# the durability schedule performs, torn-write variants included, each
# followed by a recovery load that must land on a consistent prefix),
# the durability fault matrix (ENOSPC / sync / rename failures on the
# save and tail-append paths), the mid-promotion tail crash, and the
# scan cancellation/deadline/shedding tests.
torture-smoke:
	$(GO) test -race -count=1 -run 'TestCrashRecoveryTorture|TestDurabilityFaultMatrix' .
	$(GO) test -race -count=1 -run 'TestTailPromotionCrashRecovery' ./internal/snapshot
	$(GO) test -race -count=1 -run 'TestScanCancellation|TestScanDeadline|TestScanMidFlight' ./internal/store
	$(GO) test -race -count=1 -run 'TestAdmission|TestRequestTimeoutTaxonomy|TestHTTPErrorTaxonomy' ./internal/server
