# Development targets. CI runs fmt/vet/build/test plus a one-iteration
# bench smoke so the serving benchmarks cannot rot.

GO ?= go
# The serving benchmarks of the read path (internal/store): index probe
# vs linear baseline, parallel fallback scan, full-extent
# zero-row-id-allocation projection, and the predicate-pushdown probe
# (zone-map pruning) vs the filtered linear baseline.
SERVING_BENCH ?= QueryViewport|ExactScanParallel|QueryFullExtentProjection|ScanRectFiltered|ScanLinearFiltered

.PHONY: all build test race bench bench-smoke fmt vet fuzz-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# bench runs the serving benchmarks and commits the numbers as
# BENCH_PR3.json (the repo's benchmark trajectory; BENCH_PR2.json is the
# previous point on it).
bench:
	$(GO) test -run '^$$' -bench '$(SERVING_BENCH)' -benchmem ./internal/store | tee /tmp/bench_serving.txt
	$(GO) run ./cmd/bench2json < /tmp/bench_serving.txt > BENCH_PR3.json
	@echo wrote BENCH_PR3.json

# bench-smoke is the CI guard: every serving benchmark must still
# compile and complete one iteration.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(SERVING_BENCH)' -benchtime 1x ./internal/store

# fuzz-smoke gives the RowSet algebra fuzzer a short budget against its
# checked-in corpus (testdata/fuzz); CI runs it on every push.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzRowSetAlgebra -fuzztime 10s ./internal/store
