# Development targets. CI runs fmt/vet/build/test plus a one-iteration
# bench smoke so the serving benchmarks cannot rot.

GO ?= go
# The serving benchmarks of the read path (internal/store): index probe
# vs linear baseline, parallel fallback scan, full-extent
# zero-row-id-allocation projection, the predicate-pushdown probe
# (zone-map pruning) vs the filtered linear baseline, and the
# live-ingest scans (delta-index probe vs seed-state linear tail) plus
# append throughput.
SERVING_BENCH ?= QueryViewport|ExactScanParallel|QueryFullExtentProjection|ScanRectFiltered|ScanLinearFiltered|ScanAfterAppend|AppendThroughput
# The cold-start benchmarks (root package): bringing a 1M-row catalog
# up by full offline rebuild vs restoring it from a snapshot file.
SNAPSHOT_BENCH ?= ColdStart

.PHONY: all build test race bench bench-smoke fmt vet fuzz-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# bench runs the serving + cold-start benchmarks and commits the
# numbers as BENCH_PR5.json (the repo's benchmark trajectory;
# BENCH_PR2.json .. BENCH_PR4.json are the previous points on it).
bench:
	$(GO) test -run '^$$' -bench '$(SERVING_BENCH)' -benchmem ./internal/store | tee /tmp/bench_serving.txt
	$(GO) test -run '^$$' -bench '$(SNAPSHOT_BENCH)' -benchmem . | tee -a /tmp/bench_serving.txt
	$(GO) run ./cmd/bench2json < /tmp/bench_serving.txt > BENCH_PR5.json
	@echo wrote BENCH_PR5.json

# bench-smoke is the CI guard: every committed benchmark must still
# compile and complete one iteration.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(SERVING_BENCH)' -benchtime 1x ./internal/store
	$(GO) test -run '^$$' -bench '$(SNAPSHOT_BENCH)' -benchtime 1x .

# fuzz-smoke gives the RowSet algebra and snapshot decoder fuzzers a
# short budget against their checked-in corpora (testdata/fuzz); CI
# runs it on every push.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzRowSetAlgebra -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime 10s ./internal/snapshot
