# Development targets. CI runs fmt/vet/build/test plus a one-iteration
# bench smoke so the serving benchmarks cannot rot.

GO ?= go
# The serving benchmarks of the read-path refactor (internal/store):
# index probe vs linear baseline, parallel fallback scan, full-extent
# zero-row-id-allocation projection.
SERVING_BENCH ?= QueryViewport|ExactScanParallel|QueryFullExtentProjection

.PHONY: all build test race bench bench-smoke fmt vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# bench runs the serving benchmarks and commits the numbers as
# BENCH_PR2.json (the repo's benchmark trajectory).
bench:
	$(GO) test -run '^$$' -bench '$(SERVING_BENCH)' -benchmem ./internal/store | tee /tmp/bench_serving.txt
	$(GO) run ./cmd/bench2json < /tmp/bench_serving.txt > BENCH_PR2.json
	@echo wrote BENCH_PR2.json

# bench-smoke is the CI guard: every serving benchmark must still
# compile and complete one iteration.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(SERVING_BENCH)' -benchtime 1x ./internal/store
