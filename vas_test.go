package vas_test

import (
	"bytes"
	"image/png"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"

	vas "repro"
)

func skewedData(n int, seed int64) []vas.Point {
	return dataset.GeolifeLike(dataset.GeolifeOptions{N: n, Seed: seed}).Points
}

func TestBuildBasics(t *testing.T) {
	data := skewedData(5000, 1)
	s, err := vas.Build(data, vas.Options{K: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 200 || len(s.IDs) != 200 {
		t.Fatalf("sample size %d/%d ids", len(s.Points), len(s.IDs))
	}
	for i, id := range s.IDs {
		if !data[id].Equal(s.Points[i]) {
			t.Fatalf("ids not parallel to points at %d", i)
		}
	}
	if s.Objective <= 0 {
		t.Errorf("objective = %v", s.Objective)
	}
	if s.Kernel().Bandwidth() <= 0 {
		t.Error("kernel not exposed")
	}
}

func TestBuildValidation(t *testing.T) {
	data := skewedData(100, 2)
	if _, err := vas.Build(data, vas.Options{K: 0}); err == nil {
		t.Error("K=0: want error")
	}
	if _, err := vas.Build(nil, vas.Options{K: 5}); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := vas.Build(data, vas.Options{K: 5, Kernel: "cosine"}); err == nil {
		t.Error("bad kernel: want error")
	}
	if _, err := vas.Build(data, vas.Options{K: 5, Variant: "quantum"}); err == nil {
		t.Error("bad variant: want error")
	}
}

func TestBuildKGreaterThanN(t *testing.T) {
	data := skewedData(50, 3)
	s, err := vas.Build(data, vas.Options{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 50 {
		t.Errorf("K>N should return everything, got %d", len(s.Points))
	}
}

func TestBuildVariantsProduceComparableQuality(t *testing.T) {
	data := skewedData(3000, 4)
	var objs []float64
	for _, variant := range []string{"es", "no-es", "es+loc"} {
		s, err := vas.Build(data, vas.Options{K: 50, Variant: variant, Passes: 1})
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		objs = append(objs, s.Objective)
	}
	// es and no-es implement the same rule exactly.
	if diff := objs[0] - objs[1]; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("es %v vs no-es %v", objs[0], objs[1])
	}
	// es+loc may truncate kernel tails but must stay close.
	if objs[2] > objs[0]*1.05+1e-9 {
		t.Errorf("es+loc objective %v far above es %v", objs[2], objs[0])
	}
}

func TestBuildBeatsBaselinesOnLoss(t *testing.T) {
	data := skewedData(30000, 5)
	const k = 300
	s, err := vas.Build(data, vas.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	uni, _, err := vas.Uniform(data, k, 5)
	if err != nil {
		t.Fatal(err)
	}
	vasLoss, err := vas.EvaluateLoss(data, s.Points, 0, 500, 6)
	if err != nil {
		t.Fatal(err)
	}
	uniLoss, err := vas.EvaluateLoss(data, uni, 0, 500, 6)
	if err != nil {
		t.Fatal(err)
	}
	if vasLoss.LogLossRatio >= uniLoss.LogLossRatio {
		t.Errorf("VAS ratio %v not below uniform %v", vasLoss.LogLossRatio, uniLoss.LogLossRatio)
	}
}

func TestUniformAndStratified(t *testing.T) {
	data := skewedData(2000, 7)
	uni, ids, err := vas.Uniform(data, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(uni) != 100 || len(ids) != 100 {
		t.Fatalf("uniform returned %d/%d", len(uni), len(ids))
	}
	strat, sids, err := vas.Stratified(data, 100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(strat) != 100 || len(sids) != 100 {
		t.Fatalf("stratified returned %d/%d", len(strat), len(sids))
	}
	if _, _, err := vas.Uniform(nil, 10, 1); err == nil {
		t.Error("uniform empty data: want error")
	}
	if _, _, err := vas.Stratified(data, 0, 10, 1); err == nil {
		t.Error("stratified k=0: want error")
	}
}

func TestDensityEmbed(t *testing.T) {
	data := skewedData(8000, 8)
	s, err := vas.Build(data, vas.Options{K: 80})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.DensityEmbed(data)
	if err != nil {
		t.Fatal(err)
	}
	if ws.TotalCount() != int64(len(data)) {
		t.Errorf("counts sum %d, want %d", ws.TotalCount(), len(data))
	}
}

func TestRenderPNGRoundTrips(t *testing.T) {
	data := skewedData(2000, 9)
	var buf bytes.Buffer
	if err := vas.RenderPNG(&buf, data, vas.Rect{}, 120, 90); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 120 || img.Bounds().Dy() != 90 {
		t.Errorf("bounds %v", img.Bounds())
	}
	// Weighted render.
	s, err := vas.Build(data, vas.Options{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.DensityEmbed(data)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := vas.RenderWeightedPNG(&buf, ws, vas.Rect{}, 80, 80); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatal(err)
	}
	// Map plot.
	values := make([]float64, len(data))
	rng := rand.New(rand.NewSource(10))
	for i := range values {
		values[i] = rng.Float64() * 100
	}
	buf.Reset()
	if err := vas.RenderMapPNG(&buf, data, values, vas.Rect{}, 80, 80); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatal(err)
	}
	// Error paths.
	if err := vas.RenderPNG(&buf, nil, vas.Rect{}, 10, 10); err == nil {
		t.Error("empty render: want error")
	}
	if err := vas.RenderWeightedPNG(&buf, nil, vas.Rect{}, 10, 10); err == nil {
		t.Error("nil weighted render: want error")
	}
}

func TestZoomFacade(t *testing.T) {
	bounds := vas.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	vp, err := vas.Zoom(bounds, vas.Pt(50, 50), 10)
	if err != nil {
		t.Fatal(err)
	}
	if vp.Width() != 10 || vp.Height() != 10 {
		t.Errorf("viewport %v", vp)
	}
	if _, err := vas.Zoom(bounds, vas.Pt(50, 50), 0.1); err == nil {
		t.Error("zoom < 1: want error")
	}
}

func TestCatalogEndToEnd(t *testing.T) {
	data := skewedData(20000, 11)
	cat := vas.NewCatalog()
	if err := cat.LoadTable("gps", data); err != nil {
		t.Fatal(err)
	}
	if err := cat.BuildSamples("gps", data, []int{50, 500}, true, vas.Options{Passes: 1}); err != nil {
		t.Fatal(err)
	}
	// Interactive query serves the largest fitting sample.
	res, err := cat.Query("gps", vas.Rect{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 500 {
		t.Errorf("served K=%d, want 500", res.SampleSize)
	}
	if res.PredictedTime > 2*time.Second {
		t.Errorf("predicted time %v exceeds interactive limit", res.PredictedTime)
	}
	if res.Counts == nil {
		t.Error("density counts missing from a with-density catalog")
	}
	// Tight budget falls back to the small sample.
	res, err = cat.Query("gps", vas.Rect{}, 1600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 500 && res.SampleSize != 50 {
		t.Errorf("unexpected sample size %d", res.SampleSize)
	}
	// Viewport-restricted query returns only in-view points.
	bounds := boundsOf(data)
	zoomVP, err := vas.Zoom(bounds, bounds.Center(), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err = cat.Query("gps", zoomVP, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if !zoomVP.Contains(p) {
			t.Fatalf("point %v outside viewport", p)
		}
	}
	// Exact scan returns the base table.
	exact, err := cat.QueryExact("gps", vas.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Points) != len(data) {
		t.Errorf("exact scan returned %d of %d", len(exact.Points), len(data))
	}
	// Loading an existing table replaces its contents (a reload, not an
	// error): the next exact scan sees the new generation.
	if err := cat.LoadTable("gps", data[:100]); err != nil {
		t.Fatalf("reload: %v", err)
	}
	exact, err = cat.QueryExact("gps", vas.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Points) != 100 {
		t.Errorf("exact scan after reload returned %d points, want 100", len(exact.Points))
	}
	// Re-running BuildSamples after the reload replaces the stale samples
	// in place (same names, no duplicate catalog entries) so budget-bound
	// queries serve the new data. K=500 over 100 points degenerates to
	// all 100 points — seeing size 100 proves the old 500-point sample
	// was replaced, not kept alongside.
	if err := cat.BuildSamples("gps", data[:100], []int{50, 500}, true, vas.Options{Passes: 1}); err != nil {
		t.Fatalf("rebuild samples after reload: %v", err)
	}
	res, err = cat.Query("gps", vas.Rect{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 100 {
		t.Errorf("post-rebuild query served K=%d, want the refreshed 100-point sample", res.SampleSize)
	}
}

// TestCatalogQueryFiltered: attribute filters ride down into the sample
// scan through the public façade, compose with the viewport, and report
// how the probe was answered.
func TestCatalogQueryFiltered(t *testing.T) {
	data := skewedData(20000, 13)
	cat := vas.NewCatalog()
	if err := cat.LoadTable("gps", data); err != nil {
		t.Fatal(err)
	}
	if err := cat.BuildSamples("gps", data, []int{500}, true, vas.Options{Passes: 1}); err != nil {
		t.Fatal(err)
	}
	bounds := boundsOf(data)
	cx := bounds.Center().X
	unfiltered, err := cat.Query("gps", vas.Rect{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cat.QueryFiltered("gps", vas.Rect{},
		[]vas.Pred{{Column: "x", Min: bounds.MinX, Max: cx}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 || len(res.Points) >= len(unfiltered.Points) {
		t.Fatalf("x-half filter kept %d of %d points", len(res.Points), len(unfiltered.Points))
	}
	for _, p := range res.Points {
		if p.X > cx {
			t.Errorf("point %v escapes the x filter", p)
		}
	}
	if len(res.Counts) != len(res.Points) {
		t.Errorf("density counts desynced: %d counts for %d points", len(res.Counts), len(res.Points))
	}
	if !res.Scan.IndexProbe {
		t.Error("catalog samples are indexed; the filtered query should probe")
	}
	// Filter + viewport compose; density filters hit the §V counts.
	vp, err := vas.Zoom(bounds, bounds.Center(), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err = cat.QueryFiltered("gps", vp, []vas.Pred{{Column: "density", Min: 2, Max: 1e18}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Points {
		if !vp.Contains(p) {
			t.Fatalf("point %v outside viewport", p)
		}
		if res.Counts[i] < 2 {
			t.Errorf("density filter leaked count %g", res.Counts[i])
		}
	}
}

func boundsOf(pts []vas.Point) vas.Rect {
	b := vas.Rect{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts {
		if p.X < b.MinX {
			b.MinX = p.X
		}
		if p.X > b.MaxX {
			b.MaxX = p.X
		}
		if p.Y < b.MinY {
			b.MinY = p.Y
		}
		if p.Y > b.MaxY {
			b.MaxY = p.Y
		}
	}
	return b
}

func TestEvaluateLossValidation(t *testing.T) {
	data := skewedData(500, 12)
	if _, err := vas.EvaluateLoss(nil, data[:10], 0, 100, 1); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := vas.EvaluateLoss(data, nil, 0, 100, 1); err == nil {
		t.Error("empty sample: want error")
	}
	rep, err := vas.EvaluateLoss(data, data, 0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LogLossRatio < -1e-9 || rep.LogLossRatio > 1e-9 {
		t.Errorf("self ratio = %v, want 0", rep.LogLossRatio)
	}
}
