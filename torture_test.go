package vas_test

// Crash-recovery torture suite (ISSUE 10 acceptance): enumerate every
// mutating file-op site the durability layer touches across a fixed
// append/delete/save schedule, crash at each one (plus a torn-write
// variant at every write site), and assert the two-sided contract:
//
//   - the LIVE catalog that experienced the crash keeps serving its
//     full in-memory state (durability degrades; serving does not), and
//   - a fresh LoadSnapshot of the crashed directory either restores a
//     consistent prefix of the acknowledged schedule (the crashing
//     operation itself may or may not have landed — never half of it,
//     never anything after it) or rejects cleanly with ErrCorrupt.
//
// The recording pass runs the schedule through a transparent
// fault.Injector to discover the op sites, so the enumeration tracks
// the real code — a new Sync or Rename in the save path automatically
// becomes a new crash site here.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/snapshot"

	vas "repro"
)

// tortureOp is one schedule step. Far-region coordinates (>= 1000) keep
// the mutations disjoint from the base dataset, so the model below only
// has to track the points this schedule itself creates.
type tortureOp struct {
	kind string // "append" | "delete" | "save"
	pts  []vas.Point
	rect vas.Rect
}

func tortureSchedule() []tortureOp {
	return []tortureOp{
		{kind: "append", pts: []vas.Point{vas.Pt(1000, 1000), vas.Pt(1001, 1001), vas.Pt(1002, 1002)}},
		{kind: "append", pts: []vas.Point{vas.Pt(1003, 1003), vas.Pt(1004, 1004), vas.Pt(1005, 1005)}},
		{kind: "save"},
		{kind: "append", pts: []vas.Point{vas.Pt(1006, 1006), vas.Pt(1007, 1007)}},
		{kind: "delete", rect: vas.Rect{MinX: 1002.5, MinY: 1002.5, MaxX: 1006.5, MaxY: 1006.5}},
		{kind: "append", pts: []vas.Point{vas.Pt(1008, 1008), vas.Pt(1009, 1009)}},
		{kind: "save"},
	}
}

// tortureStates returns the expected far-region point set after each
// prefix of the schedule: states[i] is the model after the first i
// steps. Saves do not change the model.
func tortureStates() [][]vas.Point {
	sched := tortureSchedule()
	states := make([][]vas.Point, len(sched)+1)
	var cur []vas.Point
	states[0] = nil
	for i, op := range sched {
		switch op.kind {
		case "append":
			cur = append(append([]vas.Point(nil), cur...), op.pts...)
		case "delete":
			var kept []vas.Point
			for _, p := range cur {
				if p.X >= op.rect.MinX && p.X <= op.rect.MaxX &&
					p.Y >= op.rect.MinY && p.Y <= op.rect.MaxY {
					continue
				}
				kept = append(kept, p)
			}
			cur = kept
		}
		states[i+1] = cur
	}
	return states
}

// runTortureSchedule executes the schedule against a catalog bound to
// dir and returns how many leading steps were acknowledged (returned
// nil). Once one step fails, every later step must fail too — the
// process is "dead" behind the crashed filesystem — and a late success
// would break prefix semantics, so it is fatal.
func runTortureSchedule(t *testing.T, c *vas.Catalog, dir string) int {
	t.Helper()
	acked := 0
	failed := false
	for i, op := range tortureSchedule() {
		var err error
		switch op.kind {
		case "append":
			err = c.Append("gps", op.pts)
		case "delete":
			_, err = c.DeleteRect("gps", op.rect)
		case "save":
			err = c.SaveSnapshot(dir)
		}
		switch {
		case err == nil && failed:
			t.Fatalf("step %d (%s) succeeded after an earlier step failed", i, op.kind)
		case err == nil:
			acked++
		default:
			failed = true
		}
	}
	return acked
}

// farTortureRect covers every point the schedule creates and nothing
// from the base dataset.
var farTortureRect = vas.Rect{MinX: 999.5, MinY: 999.5, MaxX: 1009.5, MaxY: 1009.5}

func farPoints(t *testing.T, c *vas.Catalog) []vas.Point {
	t.Helper()
	res, err := c.QueryExact("gps", farTortureRect)
	if err != nil {
		t.Fatalf("far-region query: %v", err)
	}
	out := append([]vas.Point(nil), res.Points...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].X != out[b].X {
			return out[a].X < out[b].X
		}
		return out[a].Y < out[b].Y
	})
	return out
}

func samePoints(a, b []vas.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].X != b[i].X || a[i].Y != b[i].Y {
			return false
		}
	}
	return true
}

func sortedCopy(pts []vas.Point) []vas.Point {
	out := append([]vas.Point(nil), pts...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].X != out[b].X {
			return out[a].X < out[b].X
		}
		return out[a].Y < out[b].Y
	})
	return out
}

// copySnapshotDir clones the baseline snapshot directory so every
// replay starts from identical bytes.
func copySnapshotDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashRecoveryTorture(t *testing.T) {
	// Baseline: a small catalog saved once with the real filesystem.
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 500, Seed: 33})
	base := vas.NewCatalog()
	if err := base.LoadTable("gps", d.Points); err != nil {
		t.Fatal(err)
	}
	if err := base.BuildSamples("gps", d.Points, []int{40}, false, vas.Options{Passes: 1}); err != nil {
		t.Fatal(err)
	}
	baseDir := t.TempDir()
	if err := base.SaveSnapshot(baseDir); err != nil {
		t.Fatal(err)
	}
	pristine := vas.NewCatalog()
	if err := pristine.LoadSnapshot(baseDir); err != nil {
		t.Fatal(err)
	}
	baseRes, err := pristine.QueryExact("gps", vas.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	baseCount := len(baseRes.Points)

	states := tortureStates()
	sched := tortureSchedule()

	// Recording pass: a transparent injector counts every mutating file
	// op the schedule performs — the crash-site enumeration.
	recDir := t.TempDir()
	copySnapshotDir(t, baseDir, recDir)
	recCat := vas.NewCatalog()
	if err := recCat.LoadSnapshot(recDir); err != nil {
		t.Fatal(err)
	}
	rec := fault.NewInjector(nil)
	restore := snapshot.SetFS(rec)
	if got := runTortureSchedule(t, recCat, recDir); got != len(sched) {
		restore()
		t.Fatalf("recording pass acked %d of %d steps", got, len(sched))
	}
	recCat.WaitBackground()
	restore()
	sites := rec.Log()
	if len(sites) == 0 {
		t.Fatal("recording pass saw no mutating file ops")
	}
	t.Logf("enumerated %d mutating file-op sites", len(sites))

	// Replay: crash at every site; torn variant at every write site.
	for k, site := range sites {
		for _, torn := range []bool{false, true} {
			if torn && site.Op != fault.OpWrite {
				continue
			}
			name := fmt.Sprintf("site-%02d-%s", k, site.Op)
			if torn {
				name += "-torn"
			}
			k := k
			t.Run(name, func(t *testing.T) {
				work := t.TempDir()
				copySnapshotDir(t, baseDir, work)
				cat := vas.NewCatalog()
				if err := cat.LoadSnapshot(work); err != nil {
					t.Fatal(err)
				}
				inj := fault.NewInjector(nil)
				inj.CrashAt(k, torn)
				restore := snapshot.SetFS(inj)
				acked := runTortureSchedule(t, cat, work)
				// Background re-save retries kicked by the failures run
				// against the crashed filesystem; drain them before the
				// seam is restored.
				cat.WaitBackground()
				restore()
				if !inj.Crashed() {
					t.Fatalf("crash point %d never fired (%d ops)", k, inj.Ops())
				}
				if acked >= len(sched) {
					t.Fatalf("crash at site %d failed no schedule step", k)
				}

				// The live catalog keeps serving its complete in-memory
				// state: every mutation went live before its durability
				// write, so the crash costs persistence, not availability.
				if got := farPoints(t, cat); !samePoints(got, sortedCopy(states[len(sched)])) {
					t.Fatalf("live catalog after crash serves %v, want full model %v",
						got, sortedCopy(states[len(sched)]))
				}

				// Recovery: either a consistent prefix — the acked steps,
				// with the crashing step itself optionally included — or a
				// clean, typed corruption error. Nothing else.
				fresh := vas.NewCatalog()
				switch err := fresh.LoadSnapshot(work); {
				case err == nil:
					got := farPoints(t, fresh)
					want1 := sortedCopy(states[acked])
					want2 := sortedCopy(states[acked+1])
					if !samePoints(got, want1) && !samePoints(got, want2) {
						t.Fatalf("recovered state %v is neither model(%d acked)=%v nor model(+crashing op)=%v",
							got, acked, want1, want2)
					}
					baseGot, err := fresh.QueryExact("gps", vas.Rect{})
					if err != nil {
						t.Fatal(err)
					}
					if len(baseGot.Points)-len(got) != baseCount {
						t.Fatalf("base rows changed across crash recovery: %d visible minus %d far, want %d",
							len(baseGot.Points), len(got), baseCount)
					}
				case errors.Is(err, snapshot.ErrCorrupt):
					// Clean typed rejection; the catalog must stay empty.
					if _, qerr := fresh.Query("gps", vas.Rect{}, 0); qerr == nil {
						t.Fatal("rejected load still published state")
					}
				default:
					t.Fatalf("recovery failed with an untyped error: %v", err)
				}
			})
		}
	}
}
