// Package vas (module repro) is the public API of this repository: a Go
// implementation of Visualization-Aware Sampling (Park, Cafarella,
// Mozafari — ICDE 2016). VAS selects a K-point subset of a large 2D
// dataset that preserves the visual fidelity of scatter and map plots at
// arbitrary zoom, by minimizing a visualization-driven loss instead of the
// aggregation-oriented criteria of uniform or stratified sampling.
//
// Basic usage:
//
//	sample, err := vas.Build(points, vas.Options{K: 10_000})
//	// plot sample.Points instead of points
//
// For density-estimation or clustering workloads, attach the §V density
// embedding and render dots sized by count:
//
//	ws, err := sample.DensityEmbed(points)
//
// The package also exposes the baselines (Uniform, Stratified), the loss
// metric the samples optimize (EvaluateLoss), PNG rendering, and a small
// latency-bound serving layer (Catalog) mirroring the paper's Fig. 3
// architecture. Internal packages contain the substrates: the Interchange
// algorithm and exact solver (internal/vas), spatial indexes
// (internal/rtree, internal/kdtree, internal/grid), the loss evaluator
// (internal/loss), dataset generators (internal/dataset), rendering
// (internal/render), the store/query engine (internal/store,
// internal/query) and the full experiment harness (internal/experiments).
package vas

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/loss"
	"repro/internal/obs"
	"repro/internal/proximity"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/sampling"
	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/store"
	core "repro/internal/vas"
	"repro/internal/viztime"
)

// Point is a 2D data point (X = longitude / x-axis column, Y = latitude /
// y-axis column).
type Point = geom.Point

// Rect is an axis-aligned rectangle used for viewports and zoom regions.
type Rect = geom.Rect

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Pred is a conjunctive range predicate over a named column — the shape
// dashboards emit for attribute slicing (time window, magnitude band).
// A row matches when Min <= value <= Max; NaN bounds mean unbounded.
type Pred = store.Pred

// ScanStats reports how a query's row selection was answered: index
// probe vs linear fallback, and how many grid cells the zone maps
// pruned for filtered queries.
type ScanStats = store.ScanStats

// Neighbor is one k-nearest-neighbour result row (see Catalog.Nearest).
type Neighbor = store.Neighbor

// Index-backend policy names accepted by Catalog.SetIndexBackend and
// the vasserve -index-backend flag.
const (
	IndexBackendAuto  = store.BackendAuto
	IndexBackendGrid  = store.BackendGrid
	IndexBackendRTree = store.BackendRTree
)

// Options configures Build.
type Options struct {
	// K is the sample size (required, positive).
	K int
	// Epsilon is the kernel bandwidth ε; 0 derives it from the data via
	// the paper's heuristic (max pairwise distance / 100).
	Epsilon float64
	// Kernel names the proximity family: "gaussian" (default, the
	// paper's), "epanechnikov", or "tricube".
	Kernel string
	// Variant names the Interchange implementation: "es" (default),
	// "no-es", or "es+loc".
	Variant string
	// Passes is how many times Build streams the data through
	// Interchange; 0 means 2. More passes converge closer to the
	// fixed point (Theorem 3); convergence stops passes early.
	Passes int
}

// Sample is a VAS sample: the selected points, their indices into the
// input, and the achieved optimization objective.
type Sample struct {
	// Points are the selected points.
	Points []Point
	// IDs are indices into the dataset passed to Build, parallel to
	// Points.
	IDs []int
	// Objective is Σ_{i<j} κ̃ over the sample — the quantity VAS
	// minimizes; comparable across samples of the same K and kernel.
	Objective float64
	// Passes is how many passes Interchange ran.
	Passes int

	kern proximity.Func
}

// Kernel returns the proximity function the sample was built with, for
// use with EvaluateLoss.
func (s *Sample) Kernel() proximity.Func { return s.kern }

// Build runs the Interchange algorithm over points and returns the VAS
// sample. Build streams the data Passes times (default 2) and stops early
// at the Interchange fixed point.
func Build(points []Point, opt Options) (*Sample, error) {
	if opt.K <= 0 {
		return nil, fmt.Errorf("vas: Options.K must be positive, got %d", opt.K)
	}
	if len(points) == 0 {
		return nil, errors.New("vas: empty dataset")
	}
	kern, err := resolveKernel(points, opt)
	if err != nil {
		return nil, err
	}
	variant := core.ES
	if opt.Variant != "" {
		variant, err = core.ParseVariant(opt.Variant)
		if err != nil {
			return nil, err
		}
	}
	passes := opt.Passes
	if passes <= 0 {
		passes = 2
	}
	if opt.K >= len(points) {
		ids := make([]int, len(points))
		for i := range ids {
			ids[i] = i
		}
		return &Sample{
			Points:    append([]Point(nil), points...),
			IDs:       ids,
			Objective: core.Objective(kern, points),
			kern:      kern,
		}, nil
	}
	ic := core.NewInterchange(core.Options{K: opt.K, Kernel: kern, Variant: variant})
	ran := core.Converge(ic, points, passes)
	return &Sample{
		Points:    ic.Sample(),
		IDs:       ic.SampleIDs(),
		Objective: ic.RecomputeObjective(),
		Passes:    ran,
		kern:      kern,
	}, nil
}

func resolveKernel(points []Point, opt Options) (proximity.Func, error) {
	kind := proximity.Gaussian
	if opt.Kernel != "" {
		var err error
		kind, err = proximity.ParseKind(opt.Kernel)
		if err != nil {
			return proximity.Func{}, err
		}
	}
	if opt.Epsilon > 0 {
		return proximity.New(kind, opt.Epsilon), nil
	}
	return proximity.FromData(kind, points)
}

// WeightedSample is a sample with §V density counts: Counts[i] is the
// number of dataset points represented by Points[i]. Render these with
// dot sizes or jitter proportional to the count.
type WeightedSample = core.WeightedSample

// DensityEmbed runs the second pass of §V over data (normally the same
// slice passed to Build) and returns the weighted sample.
func (s *Sample) DensityEmbed(data []Point) (*WeightedSample, error) {
	return core.DensityPass(s.Points, s.IDs, data)
}

// Uniform draws a uniform random sample of size k (reservoir, one pass).
func Uniform(points []Point, k int, seed int64) (pts []Point, ids []int, err error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("vas: k must be positive, got %d", k)
	}
	if len(points) == 0 {
		return nil, nil, errors.New("vas: empty dataset")
	}
	r := sampling.NewReservoir(k, seed)
	sampling.Run(r, points)
	return r.Sample(), r.SampleIDs(), nil
}

// Stratified draws a grid-stratified sample of size k over bins×bins
// cells with the most-balanced allocation.
func Stratified(points []Point, k, bins int, seed int64) (pts []Point, ids []int, err error) {
	if k <= 0 || bins <= 0 {
		return nil, nil, fmt.Errorf("vas: k and bins must be positive, got k=%d bins=%d", k, bins)
	}
	if len(points) == 0 {
		return nil, nil, errors.New("vas: empty dataset")
	}
	s := sampling.NewStratifiedSquare(k, geom.Bounds(points), bins, seed)
	sampling.Run(s, points)
	return s.Sample(), s.SampleIDs(), nil
}

// LossReport scores a sample against its dataset with the paper's loss.
type LossReport struct {
	// MedianLoss is the median Monte Carlo point loss of the sample.
	MedianLoss float64
	// LogLossRatio is log10(Loss(sample)/Loss(dataset)); 0 is perfect.
	LogLossRatio float64
	// Covered is the fraction of probes with non-negligible kernel mass.
	Covered float64
}

// EvaluateLoss computes the Eq. 1 loss of sample relative to data using
// the paper's Monte Carlo procedure (probes default to 1000; seed fixes
// them). A kernel bandwidth of 0 uses the data heuristic.
func EvaluateLoss(data, sample []Point, epsilon float64, probes int, seed int64) (LossReport, error) {
	var kern proximity.Func
	var err error
	if epsilon > 0 {
		kern = proximity.New(proximity.Gaussian, epsilon)
	} else {
		kern, err = proximity.FromData(proximity.Gaussian, data)
		if err != nil {
			return LossReport{}, err
		}
	}
	ev, err := loss.NewEvaluator(data, loss.Options{Kernel: kern, Probes: probes, Seed: seed})
	if err != nil {
		return LossReport{}, err
	}
	ratio, sRes, _, err := ev.EvaluateRatio(sample, data)
	if err != nil {
		return LossReport{}, err
	}
	return LossReport{MedianLoss: sRes.MedianLoss, LogLossRatio: ratio, Covered: sRes.Covered}, nil
}

// RenderPNG rasterizes points over the viewport (use the zero Rect for
// the data extent) at w×h pixels and writes a PNG.
func RenderPNG(out io.Writer, points []Point, viewport Rect, w, h int) error {
	if viewport == (Rect{}) || viewport.IsEmpty() {
		viewport = geom.Bounds(points)
	}
	if viewport.IsEmpty() {
		return errors.New("vas: nothing to render")
	}
	viewport = padViewport(viewport)
	r := render.NewRaster(viewport, w, h)
	r.Plot(points)
	return r.WritePNG(out)
}

// RenderWeightedPNG renders a density-embedded sample with dot areas
// proportional to counts (§V's visual encoding).
func RenderWeightedPNG(out io.Writer, ws *WeightedSample, viewport Rect, w, h int) error {
	if ws == nil || len(ws.Points) == 0 {
		return errors.New("vas: nothing to render")
	}
	if viewport == (Rect{}) || viewport.IsEmpty() {
		viewport = geom.Bounds(ws.Points)
	}
	viewport = padViewport(viewport)
	r := render.NewRaster(viewport, w, h)
	if _, err := r.PlotWeighted(ws.Points, ws.Counts, 0); err != nil {
		return err
	}
	return r.WritePNG(out)
}

// RenderMapPNG renders a value-colored map plot (Fig. 1 style): values
// (e.g. altitude) are encoded as color.
func RenderMapPNG(out io.Writer, points []Point, values []float64, viewport Rect, w, h int) error {
	if len(points) == 0 {
		return errors.New("vas: nothing to render")
	}
	if viewport == (Rect{}) || viewport.IsEmpty() {
		viewport = geom.Bounds(points)
	}
	viewport = padViewport(viewport)
	m := render.NewMapPlot(viewport, w, h)
	if err := m.Plot(points, values); err != nil {
		return err
	}
	return m.WritePNG(out)
}

// Zoom returns a viewport showing 1/factor of each axis of bounds centred
// on c (clamped inside bounds).
func Zoom(bounds Rect, c Point, factor float64) (Rect, error) {
	return render.ZoomViewport(bounds, c, factor)
}

// padViewport adds a 2% margin so boundary points are visible.
func padViewport(v Rect) Rect {
	px, py := v.Width()*0.02, v.Height()*0.02
	if px == 0 {
		px = 1
	}
	if py == 0 {
		py = 1
	}
	return Rect{MinX: v.MinX - px, MinY: v.MinY - py, MaxX: v.MaxX + px, MaxY: v.MaxY + py}
}

// Catalog is the Fig. 3 serving layer: it stores a base table plus
// pre-built samples of several sizes and answers visualization queries
// within a latency budget by picking the largest sample that fits.
type Catalog struct {
	st      *store.Store
	planner *query.Planner

	srvMu sync.Mutex
	srv   *server.Server
	// HTTP-layer resilience knobs, applied when the server is created on
	// the first Handler call (see SetRequestTimeout / SetAdmissionLimits).
	reqTimeout   time.Duration
	maxInFlight  int
	queueDepth   int
	queueTimeout time.Duration

	// provMu guards prov, the per-base-table provenance the snapshot
	// subsystem persists (and staleness checks compare against).
	provMu sync.Mutex
	prov   map[string]snapshot.Provenance
	// coldStart remembers how this catalog was populated (snapshot load
	// vs full rebuild) and how long that took, for /metrics.
	coldSource string
	coldDur    time.Duration

	// snapMu serializes everything that must agree about what is on
	// disk versus in memory: appends (store write + tail-log record are
	// one critical section), full saves (catalog capture + save + tail
	// truncation), and loads. snapDir is the snapshot directory the
	// catalog is bound to ("" = no persistence); tailRows counts, per
	// table, the rows living only in the tail log since the last full
	// save (the re-save threshold is per table — a big table's backlog
	// must not trigger a full-catalog save on a small table's behalf).
	snapMu   sync.Mutex
	snapDir  string
	tailRows map[string]int64
	resaving atomic.Bool
	resaveWG sync.WaitGroup
	// snapErr marks the snapshot persistence as degraded: a tail-log
	// write or background re-save failed. While set, appends no longer
	// touch the log (a failed write followed by successful ones would
	// turn a tolerated torn-final-record into mid-file corruption) and
	// keep returning the error; a successful SaveSnapshot — retried in
	// the background with backoff — folds everything and clears it.
	snapErr     error
	lastResave  time.Time
	resaveEvery time.Duration
	// resaveBackoff spaces FAILING background re-save retries with
	// jittered exponential delays (obs.Backoff); a successful save
	// resets it so the next backlog-triggered save fires immediately.
	resaveBackoff obs.Backoff
	// snapEpoch pairs the snapshot base file with its tail log: every
	// tail record is stamped with the epoch of the save it rides on, and
	// SaveSnapshot bumps it. A crash between writing the new base file
	// and truncating the old tail leaves a tail from an earlier epoch on
	// disk; LoadSnapshot discards it (those records are already folded
	// into the base) instead of replaying the rows twice.
	snapEpoch uint64
	// readOnlyOnDegrade, when set, turns sticky snapshot degradation
	// (snapErr != nil) into an explicit read-only mode: appends and
	// deletes are rejected up-front with server.ErrDegraded instead of
	// mutating memory that can no longer be made durable.
	readOnlyOnDegrade bool

	// compactFrac is the auto-compaction threshold applied to every
	// base table the catalog loads (see store.Table.SetAutoCompact).
	compactFrac float64
	// indexBackend is the spatial-index backend policy applied to every
	// table the catalog loads or restores ("" = auto; see
	// store.Table.SetIndexBackend).
	indexBackend string
}

// DefaultCompactFraction is the auto-compaction threshold applied to
// base tables the catalog loads: a background compaction fires when a
// table's delta exceeds this fraction of its indexed rows.
const DefaultCompactFraction = 0.10

// NewCatalog returns an empty catalog using the paper's Tableau latency
// model to convert budgets to tuple counts. (The model is pluggable in
// internal/query for other deployments.)
func NewCatalog() *Catalog {
	st := store.New()
	return &Catalog{
		st:            st,
		planner:       query.NewPlanner(st, viztime.Tableau()),
		prov:          make(map[string]snapshot.Provenance),
		compactFrac:   DefaultCompactFraction,
		resaveBackoff: obs.Backoff{Base: resaveRetryBase, Max: resaveRetryMax},
	}
}

// SetCompactFraction overrides the auto-compaction threshold applied to
// tables loaded AFTER the call (LoadTable, LoadSnapshot): a table whose
// delta exceeds frac of its indexed rows compacts in the background.
// frac <= 0 disables automatic compaction.
func (c *Catalog) SetCompactFraction(frac float64) {
	c.snapMu.Lock()
	c.compactFrac = frac
	c.snapMu.Unlock()
}

func (c *Catalog) compactFraction() float64 {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	return c.compactFrac
}

// SetIndexBackend sets the spatial-index backend policy applied to
// every table the catalog loads (LoadTable, BuildSamples) or restores
// (LoadSnapshot) from now on: "auto" (the default — per-table choice
// from grid-occupancy skew), "grid", or "rtree". On a snapshot restore
// a table whose persisted index already complies keeps it; one that
// does not is rebuilt under the policy.
func (c *Catalog) SetIndexBackend(mode string) error {
	switch mode {
	case IndexBackendAuto, "", IndexBackendGrid, IndexBackendRTree:
	default:
		return fmt.Errorf("vas: unknown index backend %q (want auto, grid, or rtree)", mode)
	}
	c.snapMu.Lock()
	c.indexBackend = mode
	c.snapMu.Unlock()
	return nil
}

func (c *Catalog) indexBackendMode() string {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	return c.indexBackend
}

// LoadTable registers a base table named name with columns x and y, or
// replaces its contents when the table already exists. The (x, y) pair is
// spatially indexed at load time, so viewport queries and tile renders
// over the base table are index probes. (Re)loading invalidates the
// table's cached tiles and extent: exact and fallback renders never
// serve pixels from the previous contents. Samples built from the old
// contents keep serving until refreshed — call BuildSamples again after
// a reload; it replaces the previous sample tables in place.
func (c *Catalog) LoadTable(name string, points []Point) error {
	t, err := c.st.Table(name)
	if err != nil {
		if t, err = c.st.CreateTable(name, "x", "y"); err != nil {
			return err
		}
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = p.X
		ys[i] = p.Y
	}
	if err := t.SetIndexBackend(c.indexBackendMode()); err != nil {
		return err
	}
	if err := t.BulkLoad(xs, ys); err != nil {
		return err
	}
	if err := t.IndexOn("x", "y"); err != nil {
		return err
	}
	t.SetAutoCompact(c.compactFraction())
	// New contents, new provenance; the empty build spec marks that no
	// samples have been built against these contents yet, so a snapshot
	// saved now can never be mistaken for one carrying fresh samples.
	c.provMu.Lock()
	c.prov[name] = snapshot.Provenance{
		Table:      name,
		SourceHash: snapshot.HashColumns(xs, ys),
		Rows:       int64(len(points)),
	}
	c.provMu.Unlock()
	c.srvMu.Lock()
	if c.srv != nil {
		c.srv.InvalidateTable(name)
	}
	c.srvMu.Unlock()
	return nil
}

// BuildSamples builds and registers VAS samples of each size for the
// named table, optionally with density embedding. This is the offline
// preprocessing step of §II-D.
func (c *Catalog) BuildSamples(table string, points []Point, sizes []int, withDensity bool, opt Options) error {
	for _, k := range sizes {
		opt.K = k
		s, err := Build(points, opt)
		if err != nil {
			return fmt.Errorf("vas: building %d-point sample for %q: %w", k, table, err)
		}
		var counts []int64
		if withDensity {
			ws, err := s.DensityEmbed(points)
			if err != nil {
				return err
			}
			counts = ws.Counts
		}
		name := fmt.Sprintf("%s_vas_%d", table, k)
		meta := store.SampleMeta{Source: table, Method: "vas", XCol: "x", YCol: "y"}
		if err := query.LoadSample(c.st, name, meta, s.Points, counts); err != nil {
			return err
		}
	}
	// Record how the samples were built, completing the table's
	// provenance: a later SaveSnapshot persists it, and SnapshotFresh
	// compares against it to decide load-vs-rebuild.
	c.provMu.Lock()
	p := c.prov[table]
	p.Table = table
	p.Build = buildSpec(sizes, withDensity, opt)
	c.prov[table] = p
	c.provMu.Unlock()
	// Registering samples changes what tile requests resolve to; drop any
	// tiles the HTTP layer rendered from the previous sample set.
	c.srvMu.Lock()
	if c.srv != nil {
		c.srv.InvalidateTable(table)
	}
	c.srvMu.Unlock()
	return nil
}

// RegisterSample publishes an externally built sample for table without
// re-running the Interchange build — the path cmd/vasgen uses to
// assemble a snapshot from the sample it already built for its output
// file. counts attaches the §V density embedding when non-nil (parallel
// to s.Points). The sample table is indexed and registered exactly as
// BuildSamples would register one of the same size.
//
// Provenance: the table's build spec gains a "registered k=…" entry
// rather than the canonical BuildSamples spec, so SnapshotFresh —
// which answers "would BuildSamples(args) reproduce this catalog?" —
// reports catalogs assembled this way as stale; their freshness is the
// assembling caller's to decide.
func (c *Catalog) RegisterSample(table string, s *Sample, counts []int64) error {
	if s == nil || len(s.Points) == 0 {
		return errors.New("vas: RegisterSample: empty sample")
	}
	if counts != nil && len(counts) != len(s.Points) {
		return fmt.Errorf("vas: RegisterSample: %d counts for %d points", len(counts), len(s.Points))
	}
	name := fmt.Sprintf("%s_vas_%d", table, len(s.Points))
	meta := store.SampleMeta{Source: table, Method: "vas", XCol: "x", YCol: "y"}
	if err := query.LoadSample(c.st, name, meta, s.Points, counts); err != nil {
		return err
	}
	c.provMu.Lock()
	p := c.prov[table]
	p.Table = table
	spec := fmt.Sprintf("registered k=%d density=%t", len(s.Points), counts != nil)
	if p.Build == "" {
		p.Build = spec
	} else {
		p.Build += "; " + spec
	}
	c.prov[table] = p
	c.provMu.Unlock()
	c.srvMu.Lock()
	if c.srv != nil {
		c.srv.InvalidateTable(table)
	}
	c.srvMu.Unlock()
	return nil
}

// Append adds a batch of points to a base table while it serves: the
// rows are absorbed into the table's delta index in the same critical
// section they become visible in (scans stay at indexed speed; crossing
// the compaction threshold folds them into a fresh immutable generation
// in the background), the batch is recorded in the snapshot tail log
// when the catalog is bound to a snapshot directory (a restart replays
// it — no rebuild), and the table's cached tiles are invalidated.
//
// A non-nil error with rows already visible (tail-log write failure)
// means durability is degraded, not that the append was rejected: the
// rows serve until the process exits, and the catalog keeps retrying a
// full re-save in the background to restore persistence. Samples are
// not refreshed by Append: they keep representing the distribution they
// were built from until the next BuildSamples. Exact queries and
// tail-aware probes see appended rows immediately.
func (c *Catalog) Append(table string, pts []Point) error {
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Y
	}
	n, err := c.appendCols(table, [][]float64{xs, ys})
	if n > 0 {
		// The table changed: stale tiles must go even when the tail log
		// write failed afterwards.
		c.srvMu.Lock()
		if c.srv != nil {
			c.srv.InvalidateTable(table)
		}
		c.srvMu.Unlock()
	}
	return err
}

// tailResaveFraction is how large the tail log may grow, relative to
// its table's rows, before a background full re-save folds it into the
// base snapshot file. resaveRetryBase and resaveRetryMax bound how
// often a FAILING re-save is retried — each attempt encodes the whole
// catalog under snapMu, so back-to-back retries against a broken
// directory would stall every append. Retries back off exponentially
// with jitter (see obs.Backoff) so a fleet of degraded servers does
// not hammer shared storage in lockstep.
const (
	tailResaveFraction = 0.25
	resaveRetryBase    = 2 * time.Second
	resaveRetryMax     = 60 * time.Second
)

// appendCols is the shared append path (Catalog.Append and the HTTP
// /v1/append hook): one snapMu critical section covers the store write
// and the tail-log record, so a concurrent SaveSnapshot can never
// capture the rows into the base file AND leave them in the tail log
// (which a later load would replay twice). Returns the rows appended —
// n > 0 with a non-nil error means the rows are live but not durable
// (see Append). Tile invalidation is the caller's (both callers already
// bump the epoch).
func (c *Catalog) appendCols(table string, cols [][]float64) (int, error) {
	t, err := c.st.Table(table)
	if err != nil {
		return 0, err
	}
	if len(cols) == 0 || len(cols[0]) == 0 {
		return 0, nil
	}
	n := len(cols[0])
	c.snapMu.Lock()
	if err := c.rejectIfReadOnly("append"); err != nil {
		c.snapMu.Unlock()
		return 0, err
	}
	if err := t.AppendRows(cols...); err != nil {
		c.snapMu.Unlock()
		return 0, err
	}
	var tailErr error
	resave := false
	if c.snapDir != "" {
		switch {
		case c.snapErr != nil:
			// The log is degraded; appending past an earlier failed
			// write could corrupt it mid-file. Keep surfacing the
			// degradation and lean on the re-save retry below.
			tailErr = fmt.Errorf("vas: append not durable (snapshot persistence degraded): %w", c.snapErr)
			resave = true
		default:
			jt := obs.StartJob("tail_write")
			err := snapshot.AppendTail(filepath.Join(c.snapDir, TailFile), table, cols, c.snapEpoch)
			jt.End()
			if err != nil {
				c.snapErr = err
				tailErr = fmt.Errorf("vas: append durable tail: %w", err)
				resave = true
			} else {
				if c.tailRows == nil {
					c.tailRows = make(map[string]int64)
				}
				c.tailRows[table] += int64(n)
				resave = float64(c.tailRows[table]) >= tailResaveFraction*float64(t.NumRows())
			}
		}
		if resave && time.Since(c.lastResave) < c.resaveInterval() {
			resave = false
		}
	}
	c.snapMu.Unlock()
	if resave {
		c.kickResave()
	}
	return n, tailErr
}

// kickResave launches the background full re-save unless one is already
// in flight. Shared by the append and delete paths.
func (c *Catalog) kickResave() {
	if !c.resaving.CompareAndSwap(false, true) {
		return
	}
	c.resaveWG.Add(1)
	go func() {
		defer c.resaveWG.Done()
		defer c.resaving.Store(false)
		c.snapMu.Lock()
		dir := c.snapDir
		c.lastResave = time.Now()
		c.snapMu.Unlock()
		if dir != "" {
			// A full save folds the in-memory state (tail included) into
			// the base file, truncates the log, and clears any
			// degradation; losing the race to a concurrent explicit
			// save is fine — it does the same thing. A failure stays
			// recorded in snapErr until a retry succeeds.
			if err := c.SaveSnapshot(dir); err != nil {
				c.snapMu.Lock()
				c.snapErr = err
				// Stretch the gap before the next retry: the whole
				// catalog is re-encoded per attempt, and the directory
				// is still broken.
				c.resaveBackoff.Advance()
				c.snapMu.Unlock()
			}
		}
	}()
}

// DeleteRect tombstones every base-table row whose (x, y) lies inside r
// (the zero Rect deletes every row, matching scan conventions) and
// returns how many rows were newly deleted. Deleted rows vanish from
// every subsequent query and tile atomically; the physical space is
// reclaimed by the table's next background compaction. The predicate is
// recorded in the snapshot tail log when the catalog is bound to a
// snapshot directory, so a restart replays it in order with the appends
// around it. Samples are not refreshed by a delete: like Append, the
// pre-built samples keep representing the distribution they were built
// from until the next BuildSamples.
func (c *Catalog) DeleteRect(table string, r Rect) (int, error) {
	if r == (Rect{}) {
		return c.DeleteWhere(table, nil)
	}
	return c.DeleteWhere(table, []Pred{
		{Column: "x", Min: r.MinX, Max: r.MaxX},
		{Column: "y", Min: r.MinY, Max: r.MaxY},
	})
}

// DeleteWhere tombstones every base-table row matching all predicates
// (conjunctive range semantics; an empty list deletes every row). See
// DeleteRect for visibility, durability, and sample-staleness notes.
func (c *Catalog) DeleteWhere(table string, preds []Pred) (int, error) {
	n, err := c.deleteWhere(table, preds)
	if n > 0 {
		c.srvMu.Lock()
		if c.srv != nil {
			c.srv.InvalidateTable(table)
		}
		c.srvMu.Unlock()
	}
	return n, err
}

// deleteWhere is the shared delete path (Catalog.DeleteWhere and the
// HTTP /v1/delete hook): one snapMu critical section covers the store
// tombstone publish and the tail-log record, exactly like appendCols,
// so a save can never fold the delete into the base file AND leave its
// log record to be replayed again. The tail record carries the
// predicate, not the matched row ids — ids shift when compaction
// reclaims dead rows, but replaying the predicate stream in order
// reproduces the same visible rows. Tile invalidation is the caller's.
func (c *Catalog) deleteWhere(table string, preds []Pred) (int, error) {
	t, err := c.st.Table(table)
	if err != nil {
		return 0, err
	}
	c.snapMu.Lock()
	if err := c.rejectIfReadOnly("delete"); err != nil {
		c.snapMu.Unlock()
		return 0, err
	}
	n, err := t.DeleteWhere(preds)
	if err != nil {
		c.snapMu.Unlock()
		return 0, err
	}
	var tailErr error
	resave := false
	// A delete that matched nothing changed nothing: logging it would
	// only grow the replay (replay reproduces the same no-op).
	if c.snapDir != "" && n > 0 {
		switch {
		case c.snapErr != nil:
			tailErr = fmt.Errorf("vas: delete not durable (snapshot persistence degraded): %w", c.snapErr)
			resave = true
		default:
			tp := make([]snapshot.TailPred, len(preds))
			for i, p := range preds {
				tp[i] = snapshot.TailPred{Col: p.Column, Min: p.Min, Max: p.Max}
			}
			jt := obs.StartJob("tail_write")
			err := snapshot.AppendTailDelete(filepath.Join(c.snapDir, TailFile), table, tp, c.snapEpoch)
			jt.End()
			if err != nil {
				c.snapErr = err
				tailErr = fmt.Errorf("vas: delete durable tail: %w", err)
				resave = true
			} else {
				if c.tailRows == nil {
					c.tailRows = make(map[string]int64)
				}
				// Deleted rows count toward the re-save threshold like
				// appended ones: both are mutations living only in the
				// log until the next full save folds them in.
				c.tailRows[table] += int64(n)
				resave = float64(c.tailRows[table]) >= tailResaveFraction*float64(t.NumRows())
			}
		}
		if resave && time.Since(c.lastResave) < c.resaveInterval() {
			resave = false
		}
	}
	c.snapMu.Unlock()
	if resave {
		c.kickResave()
	}
	return n, tailErr
}

// SetTTL installs a sliding-window retention policy on a base table:
// rows whose value in col (float64 Unix seconds) is at least maxAge old
// are tombstoned — and eventually physically dropped — by the table's
// background compactions. A non-positive maxAge clears the policy.
//
// The policy itself is in-memory configuration, not snapshot state:
// re-apply it after LoadSnapshot (as cmd/vasserve does from its flags).
// Rows a TTL sweep tombstones are not tail-logged individually; they
// are captured by the next full save, and any sweep lost to a crash is
// simply re-run by the first compaction after the policy is re-applied.
func (c *Catalog) SetTTL(table, col string, maxAge time.Duration) error {
	t, err := c.st.Table(table)
	if err != nil {
		return err
	}
	return t.SetTTL(col, maxAge)
}

// WaitBackground blocks until any in-flight background re-save has
// finished: afterwards no catalog goroutine is still writing to the
// snapshot directory, and SnapshotErr reflects the outcome of every
// re-save attempt so far. For orderly shutdown and tests.
func (c *Catalog) WaitBackground() {
	c.resaveWG.Wait()
}

// resaveInterval returns the minimum gap between background re-save
// attempts: fixed when overridden (tests), otherwise the jittered
// exponential backoff delay for the current failure streak (zero while
// healthy — a backlog-triggered save fires immediately). Caller holds
// snapMu.
func (c *Catalog) resaveInterval() time.Duration {
	if c.resaveEvery > 0 {
		return c.resaveEvery
	}
	return c.resaveBackoff.Current()
}

// rejectIfReadOnly enforces the opt-in read-only degraded mode: when
// enabled and snapshot persistence is degraded, mutations are rejected
// up-front with an error wrapping server.ErrDegraded (the HTTP layer
// maps it to 503 + Retry-After) instead of growing in-memory state that
// can no longer be made durable. Caller holds snapMu.
func (c *Catalog) rejectIfReadOnly(op string) error {
	if c.readOnlyOnDegrade && c.snapErr != nil {
		return fmt.Errorf("vas: %s rejected (%w: snapshot persistence degraded): %v", op, server.ErrDegraded, c.snapErr)
	}
	return nil
}

// SetReadOnlyOnDegrade controls the explicit read-only degraded mode:
// when on, a catalog whose snapshot persistence is degraded
// (SnapshotErr != nil) rejects Append/Delete with an error wrapping
// server.ErrDegraded rather than accepting rows it cannot persist.
// Queries keep serving either way. Off by default, preserving the
// accept-but-report contract (see docs/RESILIENCE.md for the
// trade-off).
func (c *Catalog) SetReadOnlyOnDegrade(on bool) {
	c.snapMu.Lock()
	c.readOnlyOnDegrade = on
	c.snapMu.Unlock()
}

// SnapshotErr reports whether snapshot persistence is degraded: the
// last tail-log write or background re-save failed and no save has
// succeeded since. A degraded catalog keeps serving (appended rows stay
// live in memory) and keeps retrying a full re-save in the background.
func (c *Catalog) SnapshotErr() error {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	return c.snapErr
}

// buildSpec canonicalizes the arguments of BuildSamples into the
// provenance string snapshots persist: two builds agree on the spec
// exactly when they would produce the same sample set from the same
// data.
func buildSpec(sizes []int, withDensity bool, opt Options) string {
	return fmt.Sprintf("sizes=%v density=%t epsilon=%g kernel=%q variant=%q passes=%d",
		sizes, withDensity, opt.Epsilon, opt.Kernel, opt.Variant, opt.Passes)
}

// SetRequestTimeout sets the per-request deadline the HTTP layer
// applies to heavy routes (query, nearest, tile, append, delete,
// tables): a request that exceeds it is canceled cooperatively inside
// the scan kernels and answered 503 with Retry-After. Zero (the
// default) disables the deadline. Must be called before the first
// Handler call; later calls have no effect on an already-built server.
func (c *Catalog) SetRequestTimeout(d time.Duration) {
	c.srvMu.Lock()
	c.reqTimeout = d
	c.srvMu.Unlock()
}

// SetAdmissionLimits configures HTTP admission control for heavy
// routes: at most maxInFlight requests execute concurrently per route,
// up to queueDepth more wait up to queueTimeout for a slot, and
// everything beyond that is shed immediately (503 "capacity"; a queue
// wait that times out is 429 "queue_timeout" — both carry Retry-After
// and count in vasserve_requests_shed_total). maxInFlight <= 0 disables
// admission control. Must be called before the first Handler call.
func (c *Catalog) SetAdmissionLimits(maxInFlight, queueDepth int, queueTimeout time.Duration) {
	c.srvMu.Lock()
	c.maxInFlight = maxInFlight
	c.queueDepth = queueDepth
	c.queueTimeout = queueTimeout
	c.srvMu.Unlock()
}

// Handler returns the catalog's HTTP serving layer (created on first use
// and shared by later calls): budget-bound point queries, PNG map tiles
// backed by a sharded LRU tile cache, a catalog listing, and health and
// metrics endpoints. See internal/server for the routes. The handler
// serves concurrently with ongoing BuildSamples calls; newly registered
// samples invalidate that table's cached tiles.
func (c *Catalog) Handler() http.Handler {
	c.srvMu.Lock()
	defer c.srvMu.Unlock()
	if c.srv == nil {
		c.srv = server.New(c.st, c.planner, server.Config{
			// Ingest batches route through the catalog so every append
			// also lands in the snapshot tail log (durable across a
			// restart); the server bumps the tile epoch itself.
			AppendHook: c.appendCols,
			// Deletes likewise route through the catalog so the
			// predicate lands in the tail log; the server bumps the
			// tile epoch itself.
			DeleteHook: c.deleteWhere,
			// Per-table tail-log durability for the
			// vasserve_tail_log_degraded gauge.
			TailStatus: c.tailStatus,
			// Resilience knobs (zero values disable each mechanism).
			RequestTimeout: c.reqTimeout,
			MaxInFlight:    c.maxInFlight,
			QueueDepth:     c.queueDepth,
			QueueTimeout:   c.queueTimeout,
		})
		if c.coldSource != "" {
			c.srv.SetColdStart(c.coldSource, c.coldDur)
		}
	}
	return c.srv
}

// tailStatus reports, per base table, whether snapshot-tail durability
// is degraded, for the /metrics vasserve_tail_log_degraded gauge. It
// returns nil when the catalog is not bound to a snapshot directory —
// without persistence there is no tail log to degrade.
func (c *Catalog) tailStatus() []server.TailStatus {
	c.snapMu.Lock()
	dir, degraded := c.snapDir, c.snapErr != nil
	c.snapMu.Unlock()
	if dir == "" {
		return nil
	}
	c.provMu.Lock()
	names := make([]string, 0, len(c.prov))
	for name := range c.prov {
		names = append(names, name)
	}
	c.provMu.Unlock()
	sort.Strings(names)
	out := make([]server.TailStatus, len(names))
	for i, name := range names {
		out[i] = server.TailStatus{Table: name, Degraded: degraded}
	}
	return out
}

// SnapshotFile is the file name SaveSnapshot writes (and LoadSnapshot
// reads) inside the snapshot directory. TailFile is the append-only
// ingest log that rides next to it: batches appended since the last
// full save, replayed by LoadSnapshot and folded in (then deleted) by
// the next SaveSnapshot.
const (
	SnapshotFile = "catalog.snap"
	TailFile     = "catalog.tail"
)

// SaveSnapshot persists the catalog's entire serving state —
// every table's columns (appended rows included), CSR grid indexes and
// zone maps, the sample lineage, and the per-table provenance — to
// dir/catalog.snap in the versioned, checksummed binary format of
// internal/snapshot. The write is atomic (temp file + rename), so a
// crash mid-save leaves the previous snapshot intact. Rows that were
// living only in the tail log are folded into the base file by the
// capture, so the log is truncated in the same critical section; the
// save also binds the catalog to dir, making later Appends durable
// there. A later LoadSnapshot restores the catalog without re-running
// BuildSamples or any index build.
func (c *Catalog) SaveSnapshot(dir string) error {
	jt := obs.StartJob("snapshot_save")
	defer jt.End()
	// snapMu makes capture + save + tail truncation atomic with respect
	// to appendCols: no append can slip between the capture (which
	// folds every in-memory row into the base file) and the tail
	// removal, where its log record would be deleted unfolded.
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	cat := &snapshot.Catalog{}
	// One critical section for membership + lineage: a BuildSamples
	// racing the save can never leave a lineage entry in the snapshot
	// whose sample table is missing from it (which would make the file
	// unloadable).
	cat.Tables, cat.Samples = c.st.SnapshotCatalog()
	c.provMu.Lock()
	for _, p := range c.prov {
		cat.Provenance = append(cat.Provenance, p)
	}
	c.provMu.Unlock()
	// Stamp the new base file with the next epoch BEFORE touching the
	// tail: if the process dies between the rename below and RemoveTail,
	// the surviving tail carries the previous epoch and LoadSnapshot
	// discards it instead of replaying rows the capture already folded
	// into the base.
	cat.Epoch = c.snapEpoch + 1
	if err := snapshot.Save(filepath.Join(dir, SnapshotFile), cat); err != nil {
		return err
	}
	c.snapEpoch = cat.Epoch
	if err := snapshot.RemoveTail(filepath.Join(dir, TailFile)); err != nil {
		return fmt.Errorf("vas: truncating folded tail log: %w", err)
	}
	c.snapDir = dir
	c.tailRows = nil
	// Everything in memory is now in the base file: any earlier tail or
	// re-save failure is healed, and retry pacing starts over.
	c.snapErr = nil
	c.resaveBackoff.Reset()
	return nil
}

// LoadSnapshot restores a catalog saved by SaveSnapshot from
// dir/catalog.snap, then replays dir/catalog.tail — the batches
// appended since that save — through the delta-index append path, so a
// server restarted mid-ingest comes back with every appended row and
// never rebuilds a sample or an index. Every table is validated
// (framing and checksums by the decoder, every structural index
// invariant by the store) and the tail log fully parsed and
// shape-checked before anything is published; the whole batch then
// lands in one critical section under the same tile-invalidation
// machinery LoadTable uses — a corrupt, truncated, or version-skewed
// snapshot (or tail log) returns an error and leaves the catalog
// exactly as it was, never partially loaded.
//
// Freshness is the caller's decision: compare SnapshotFresh against the
// data a rebuild would use, and rebuild (then SaveSnapshot again) when
// it reports stale. Appended batches do not enter that comparison —
// provenance describes the loaded base data, and the tail rides on top.
func (c *Catalog) LoadSnapshot(dir string) error {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	cat, err := snapshot.Load(filepath.Join(dir, SnapshotFile))
	if err != nil {
		return err
	}
	tail, tailEpoch, err := snapshot.LoadTail(filepath.Join(dir, TailFile))
	if err != nil {
		return fmt.Errorf("vas: snapshot tail %s: %w", filepath.Join(dir, TailFile), err)
	}
	// Pair the tail with the base file by epoch. A tail from an EARLIER
	// save is the footprint of a crash between snapshot.Save and
	// RemoveTail: its records are already folded into the base, and
	// replaying them would duplicate every row. Discard it. A tail from
	// a LATER epoch than the base can only mean the base file was
	// swapped or rolled back underneath the log — replaying it against
	// the wrong base would publish rows that were never acknowledged
	// together, so reject the load. Epoch zero on either side means a
	// pre-epoch (v≤3 snapshot / v≤2 tail) file: replay unconditionally,
	// as those formats always did.
	if tailEpoch != 0 && cat.Epoch != 0 {
		switch {
		case tailEpoch < cat.Epoch:
			tail = nil
		case tailEpoch > cat.Epoch:
			return fmt.Errorf("vas: snapshot tail %s: %w: tail epoch %d is newer than snapshot epoch %d",
				filepath.Join(dir, TailFile), snapshot.ErrCorrupt, tailEpoch, cat.Epoch)
		}
	}
	frac := c.compactFrac
	mode := c.indexBackend
	tables := make([]*store.Table, 0, len(cat.Tables))
	byName := make(map[string]*store.Table, len(cat.Tables))
	for _, ts := range cat.Tables {
		t, err := store.TableFromSnapshot(ts)
		if err != nil {
			return fmt.Errorf("vas: snapshot %s: %w", filepath.Join(dir, SnapshotFile), err)
		}
		t.SetAutoCompact(frac)
		if err := t.SetIndexBackend(mode); err != nil {
			return err
		}
		// A forced backend rebuilds any restored index that does not
		// comply; under auto (the default) IndexOn's fast path keeps every
		// persisted index as-is, so restores stay rebuild-free.
		if mode != "" && mode != IndexBackendAuto {
			if err := t.IndexOn("x", "y"); err != nil {
				return fmt.Errorf("vas: snapshot %s: reindex %q under %q backend: %w",
					filepath.Join(dir, SnapshotFile), t.Name(), mode, err)
			}
		}
		tables = append(tables, t)
		byName[t.Name()] = t
	}
	// Validate the tail against the decoded tables before publishing
	// anything: a replay that cannot land (unknown table, wrong column
	// count) must fail the whole load, not half-apply it.
	tailRows := make(map[string]int64)
	for ri, rec := range tail {
		t, ok := byName[rec.Table]
		if !ok {
			return fmt.Errorf("vas: snapshot tail record %d targets unknown table %q", ri, rec.Table)
		}
		if rec.Delete {
			cols := make(map[string]bool, len(t.Columns()))
			for _, name := range t.Columns() {
				cols[name] = true
			}
			for _, p := range rec.Preds {
				if !cols[p.Col] {
					return fmt.Errorf("vas: snapshot tail record %d deletes on unknown column %q of table %q",
						ri, p.Col, rec.Table)
				}
			}
			continue
		}
		if len(rec.Cols) != len(t.Columns()) {
			return fmt.Errorf("vas: snapshot tail record %d has %d columns for %d-column table %q",
				ri, len(rec.Cols), len(t.Columns()), rec.Table)
		}
		tailRows[rec.Table] += int64(len(rec.Cols[0]))
	}
	if err := c.st.PublishCatalog(tables, cat.Samples); err != nil {
		return fmt.Errorf("vas: snapshot %s: %w", filepath.Join(dir, SnapshotFile), err)
	}
	// Replay the tail in order: AppendRows bins every batch into the
	// restored indexes' deltas, and DeleteWhere re-tombstones by
	// predicate — both cheap and incremental, and neither can fail after
	// the shape checks above. Interleaving matters: a delete only covers
	// the appends before it, exactly as it did in the original process.
	for _, rec := range tail {
		t := byName[rec.Table]
		if rec.Delete {
			preds := make([]store.Pred, len(rec.Preds))
			for i, p := range rec.Preds {
				preds[i] = store.Pred{Column: p.Col, Min: p.Min, Max: p.Max}
			}
			n, err := t.DeleteWhere(preds)
			if err != nil {
				return fmt.Errorf("vas: snapshot tail delete replay on %q: %w", rec.Table, err)
			}
			tailRows[rec.Table] += int64(n)
			continue
		}
		if err := t.AppendRows(rec.Cols...); err != nil {
			return fmt.Errorf("vas: snapshot tail replay into %q: %w", rec.Table, err)
		}
	}
	c.snapDir = dir
	c.tailRows = tailRows
	c.snapEpoch = cat.Epoch
	c.provMu.Lock()
	for _, p := range cat.Provenance {
		c.prov[p.Table] = p
	}
	c.provMu.Unlock()
	// Loaded tables replace whatever the HTTP layer may have cached.
	c.srvMu.Lock()
	if c.srv != nil {
		for _, t := range tables {
			c.srv.InvalidateTable(t.Name())
		}
	}
	c.srvMu.Unlock()
	return nil
}

// SnapshotFresh reports whether the catalog's current provenance for
// table — typically just restored by LoadSnapshot — matches what
// LoadTable(points) followed by BuildSamples(sizes, withDensity, opt)
// would record: same data fingerprint, same row count, same build
// options. A fresh snapshot can be served as-is; a stale one should be
// rebuilt and re-saved.
func (c *Catalog) SnapshotFresh(table string, points []Point, sizes []int, withDensity bool, opt Options) bool {
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = p.X
		ys[i] = p.Y
	}
	want := snapshot.Provenance{
		Table:      table,
		SourceHash: snapshot.HashColumns(xs, ys),
		Rows:       int64(len(points)),
		Build:      buildSpec(sizes, withDensity, opt),
	}
	c.provMu.Lock()
	got, ok := c.prov[table]
	c.provMu.Unlock()
	return ok && got == want
}

// RecordColdStart tells the catalog how it was populated ("snapshot"
// for a LoadSnapshot restore, "rebuild" for LoadTable+BuildSamples) and
// how long that took; /metrics exposes both so operators can see what a
// restart cost and whether the snapshot path was taken.
func (c *Catalog) RecordColdStart(source string, d time.Duration) {
	c.srvMu.Lock()
	defer c.srvMu.Unlock()
	c.coldSource, c.coldDur = source, d
	if c.srv != nil {
		c.srv.SetColdStart(source, d)
	}
}

// QueryResult is the answer to a visualization query.
type QueryResult struct {
	// Points are the tuples to plot.
	Points []Point
	// Counts carries density weights when the served sample has them.
	Counts []float64
	// SampleSize is the size of the served sample (0 for an exact scan).
	SampleSize int
	// PredictedTime is the latency-model estimate for this answer.
	PredictedTime time.Duration
	// Scan reports how the rows were selected (index probe, zone-map
	// pruning for filtered queries).
	Scan ScanStats
}

// Query answers a visualization request over table within the latency
// budget (0 means the 2s interactive limit), restricted to viewport (zero
// Rect = full extent).
func (c *Catalog) Query(table string, viewport Rect, budget time.Duration) (*QueryResult, error) {
	return c.QueryFiltered(table, viewport, nil, budget)
}

// QueryFiltered answers a visualization request restricted to viewport
// AND every filter predicate, pushed down into the same index probe the
// viewport uses (per-cell zone maps prune cells no matching row can
// occupy). Filter columns are resolved against the served sample table —
// "x", "y", and "density" for samples built by BuildSamples with
// density embedding.
func (c *Catalog) QueryFiltered(table string, viewport Rect, filters []Pred, budget time.Duration) (*QueryResult, error) {
	resp, err := c.planner.Plan(query.Request{
		Table: table, XCol: "x", YCol: "y",
		Viewport: viewport, Filters: filters, Budget: budget,
	})
	if err != nil {
		return nil, err
	}
	return &QueryResult{
		Points:        resp.Points,
		Counts:        resp.Values,
		SampleSize:    resp.Sample.Size,
		PredictedTime: resp.PredictedTime,
		Scan:          resp.Scan,
	}, nil
}

// QueryRects answers one visualization request over the union of
// several viewports — the multi-monitor / comparison-dashboard shape,
// where two or more zoomed regions of the same table render in one
// round trip. Each rectangle is probed separately against the served
// table and the row sets are unioned, so a point inside two overlapping
// rectangles is returned once. Filters apply to every rectangle. An
// empty rects slice means the full extent.
func (c *Catalog) QueryRects(table string, rects []Rect, filters []Pred, budget time.Duration) (*QueryResult, error) {
	resp, err := c.planner.Plan(query.Request{
		Table: table, XCol: "x", YCol: "y",
		Rects: rects, Filters: filters, Budget: budget,
	})
	if err != nil {
		return nil, err
	}
	return &QueryResult{
		Points:        resp.Points,
		Counts:        resp.Values,
		SampleSize:    resp.Sample.Size,
		PredictedTime: resp.PredictedTime,
		Scan:          resp.Scan,
	}, nil
}

// QueryExact bypasses samples and scans the base table.
func (c *Catalog) QueryExact(table string, viewport Rect) (*QueryResult, error) {
	resp, err := c.planner.Plan(query.Request{
		Table: table, XCol: "x", YCol: "y",
		Viewport: viewport, Exact: true,
	})
	if err != nil {
		return nil, err
	}
	return &QueryResult{
		Points:        resp.Points,
		PredictedTime: resp.PredictedTime,
		Scan:          resp.Scan,
	}, nil
}

// NearestResult is the answer to a k-nearest-neighbour query.
type NearestResult struct {
	// Neighbors are the k nearest live rows, nearest first (ties broken
	// by row id); fewer when the table holds fewer matching rows.
	Neighbors []Neighbor
	// Scan reports how the search ran — best-first tree descent for
	// R-tree-backed tables, brute-force sweep otherwise.
	Scan ScanStats
}

// Nearest answers the k nearest live rows of the base table to (x, y)
// by Euclidean distance, restricted to rows matching every filter.
// Always exact — a kNN answer is k specific rows, so no sample or
// latency-budget tradeoff applies. R-tree-backed tables (see
// SetIndexBackend) answer with a best-first branch-and-bound descent;
// grid-backed and unindexed tables fall back to a brute-force sweep.
func (c *Catalog) Nearest(table string, x, y float64, k int, filters []Pred) (*NearestResult, error) {
	resp, err := c.planner.Nearest(query.NearestRequest{
		Table: table, XCol: "x", YCol: "y",
		X: x, Y: y, K: k, Filters: filters,
	})
	if err != nil {
		return nil, err
	}
	return &NearestResult{Neighbors: resp.Neighbors, Scan: resp.Scan}, nil
}
