package vas_test

// End-to-end tests of the kNN surface: /v1/nearest answered by a
// tree-backed catalog must survive a snapshot save + restore
// byte-identically, and the catalog-level backend policy must flow
// through LoadTable, LoadSnapshot, and /metrics.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dataset"

	vas "repro"
)

func TestNearestServesByteIdenticalAcrossSnapshotRestart(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 5000, Seed: 11})
	orig := vas.NewCatalog()
	if err := orig.SetIndexBackend(vas.IndexBackendRTree); err != nil {
		t.Fatal(err)
	}
	if err := orig.LoadTable("gps", d.Points); err != nil {
		t.Fatal(err)
	}
	if err := orig.BuildSamples("gps", d.Points, snapBuildSizes, true, snapBuildOpts()); err != nil {
		t.Fatal(err)
	}
	// Mutate past the bulk load so the tree answers through its delta and
	// tombstones too: appended points near the data center, then a small
	// rect delete.
	c := d.Bounds().Center()
	if err := orig.Append("gps", []vas.Point{
		vas.Pt(c.X+0.001, c.Y+0.001), vas.Pt(c.X-0.002, c.Y+0.003),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := orig.DeleteRect("gps", vas.Rect{
		MinX: c.X + 0.01, MinY: c.Y + 0.01, MaxX: c.X + 0.02, MaxY: c.Y + 0.02,
	}); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := orig.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	loaded := vas.NewCatalog()
	if err := loaded.SetIndexBackend(vas.IndexBackendRTree); err != nil {
		t.Fatal(err)
	}
	if err := loaded.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	origSrv := httptest.NewServer(orig.Handler())
	defer origSrv.Close()
	loadedSrv := httptest.NewServer(loaded.Handler())
	defer loadedSrv.Close()

	fetch := func(srv *httptest.Server, url string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	urls := []string{
		// Interior point, a larger k, a query outside the extent, and a
		// filtered query — all must answer identically after the restart.
		"/v1/nearest?table=gps&x=116.3&y=39.9&k=5",
		"/v1/nearest?table=gps&x=116.32&y=39.98&k=64",
		"/v1/nearest?table=gps&x=500&y=500&k=3",
		"/v1/nearest?table=gps&x=116.3&y=39.9&k=10&filter=x:116.3:",
	}
	for _, u := range urls {
		origCode, origBody := fetch(origSrv, u)
		if origCode != http.StatusOK {
			t.Fatalf("GET %s = %d, body %s", u, origCode, origBody)
		}
		loadedCode, loadedBody := fetch(loadedSrv, u)
		if loadedCode != http.StatusOK {
			t.Fatalf("restored GET %s = %d, body %s", u, loadedCode, loadedBody)
		}
		// Everything semantic — table, k, the neighbor rows with their
		// coordinates and distances, servedRows — precedes planMillis in
		// the response and must be byte-identical. planMillis is
		// wall-clock, and the scan tallies may differ structurally: the
		// saved index covers rows the original process still held in its
		// append tail, so the same answer can cost a different number of
		// row examinations.
		strip := func(s string) string {
			i := strings.Index(s, `"planMillis"`)
			if i < 0 {
				t.Fatalf("GET %s: unexpected body shape %s", u, s)
			}
			return s[:i]
		}
		if strip(origBody) != strip(loadedBody) {
			t.Errorf("GET %s answered differently after restart:\n  before: %s\n  after:  %s", u, origBody, loadedBody)
		}
		for side, body := range map[string]string{"original": origBody, "restored": loadedBody} {
			if !strings.Contains(body, `"indexProbe":true`) {
				t.Errorf("GET %s: %s answer did not use an index probe: %s", u, side, body)
			}
		}
	}

	// Both catalogs report the forced backend on /metrics.
	for name, srv := range map[string]*httptest.Server{"original": origSrv, "restored": loadedSrv} {
		_, body := fetch(srv, "/metrics")
		if !strings.Contains(body, `vasserve_store_index_backend{table="gps",backend="rtree"} 1`) {
			t.Errorf("%s /metrics does not report the rtree backend for gps", name)
		}
		if name == "restored" && !strings.Contains(body, "vasserve_nearest_requests_total") {
			t.Errorf("%s /metrics missing the nearest counter", name)
		}
	}

	// The catalog-level API agrees with the HTTP surface.
	res, err := loaded.Nearest("gps", 116.3, 39.9, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 5 {
		t.Fatalf("catalog Nearest returned %d neighbors, want 5", len(res.Neighbors))
	}
	for i := 1; i < len(res.Neighbors); i++ {
		if res.Neighbors[i].Dist < res.Neighbors[i-1].Dist {
			t.Fatalf("catalog Nearest not ascending: %+v", res.Neighbors)
		}
	}
	if _, err := loaded.Nearest("gps", 1, 1, 0, nil); err == nil {
		t.Fatal("k=0 did not error")
	}
}

func TestCatalogSetIndexBackendValidates(t *testing.T) {
	cat := vas.NewCatalog()
	if err := cat.SetIndexBackend("btree"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, mode := range []string{"", vas.IndexBackendAuto, vas.IndexBackendGrid, vas.IndexBackendRTree} {
		if err := cat.SetIndexBackend(mode); err != nil {
			t.Fatalf("backend %q rejected: %v", mode, err)
		}
	}
}
