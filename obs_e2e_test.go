package vas_test

// End-to-end tests of the observability surface (PR 6 acceptance): a
// deliberately slow filtered query must show up in /debug/slow with
// stage timings that approximately sum to its total, /metrics must
// expose real per-route latency histograms, tile responses must mirror
// the query scan statistics in X-Vas-* headers, and the
// vasserve_tail_log_degraded gauge must flip when the snapshot tail
// log starts failing writes.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"

	vas "repro"
)

// slowLogOf reaches the serving layer's slow-query log through the
// catalog handler, the way cmd/vasserve retunes the threshold.
func slowLogOf(t *testing.T, h http.Handler) *obs.SlowLog {
	t.Helper()
	s, ok := h.(interface{ SlowLog() *obs.SlowLog })
	if !ok {
		t.Fatalf("handler %T does not expose SlowLog", h)
	}
	return s.SlowLog()
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestObsSlowQueryEndToEnd(t *testing.T) {
	cat, _, ts := newServedCatalog(t)
	// Record every trace: the test asserts structure, not slowness.
	slowLogOf(t, cat.Handler()).SetThreshold(0)

	// A filtered exact full-extent query is the heaviest request shape:
	// index probe + residual filtering + gather + JSON encode.
	resp, _ := getBody(t, ts.URL+"/v1/query?table=gps&exact=true&filter=x:0:200")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d", resp.StatusCode)
	}
	if _, body := getBody(t, ts.URL+"/v1/tile/gps/0/0/0.png?budget=1600ms&size=128"); body == "" {
		t.Fatal("empty tile body")
	}

	resp, body := getBody(t, ts.URL+"/debug/slow")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slow = %d", resp.StatusCode)
	}
	var report obs.SlowReport
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("bad /debug/slow JSON %q: %v", body, err)
	}
	var qt *obs.TraceReport
	for i := range report.Traces {
		if report.Traces[i].Route == "query" {
			qt = &report.Traces[i]
			break
		}
	}
	if qt == nil {
		t.Fatalf("no query trace kept: %+v", report.Traces)
	}
	if qt.Table != "gps" {
		t.Errorf("trace table = %q, want gps", qt.Table)
	}
	if qt.Scan == nil {
		t.Error("trace has no scan stats attached")
	}
	if len(qt.Stages) == 0 {
		t.Fatal("trace has no stage timings")
	}
	// Stages are disjoint wall-clock intervals, so their sum must stay
	// within the request total and — for a scan-and-encode-dominated
	// exact query — account for most of it. The 0.4 floor leaves room
	// for parse/transport overhead without letting the stages decouple
	// from the total.
	if qt.StagesMillis > qt.TotalMillis {
		t.Errorf("stage sum %.3fms exceeds total %.3fms", qt.StagesMillis, qt.TotalMillis)
	}
	if qt.StagesMillis < 0.4*qt.TotalMillis {
		t.Errorf("stage sum %.3fms accounts for <40%% of total %.3fms: %+v",
			qt.StagesMillis, qt.TotalMillis, qt.Stages)
	}
	if len(report.Tables) == 0 {
		t.Error("no per-table slow summary")
	}

	// The scrape surface: real per-route histograms, not just quantile
	// gauges.
	_, metrics := getBody(t, ts.URL+"/metrics")
	for _, route := range []string{"query", "tile"} {
		for _, want := range []string{
			`vasserve_request_latency_seconds_bucket{route="` + route + `",le="+Inf"}`,
			`vasserve_request_latency_seconds_sum{route="` + route + `"}`,
			`vasserve_request_latency_seconds_count{route="` + route + `"}`,
		} {
			if !strings.Contains(metrics, want) {
				t.Errorf("metrics missing %q", want)
			}
		}
	}
	if !strings.Contains(metrics, `vasserve_stage_duration_seconds_bucket{stage="gather"`) {
		t.Error("metrics missing per-stage duration histograms")
	}
}

func TestTailLogDegradedGaugeEndToEnd(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 2000, Seed: 31})
	cat := newSnapshotCatalog(t, d)
	dir := t.TempDir()
	// Drain the background re-save before TempDir cleanup removes the
	// snapshot directory out from under it.
	t.Cleanup(cat.WaitBackground)
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cat.Handler())
	t.Cleanup(ts.Close)

	_, body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, `vasserve_tail_log_degraded{table="gps"} 0`) {
		t.Fatalf("healthy catalog should expose a zero degraded gauge:\n%s", body)
	}

	// Break the tail log the way the durability e2e test does: a
	// non-empty directory where the log file should be fails every
	// append's tail write.
	if err := os.Mkdir(filepath.Join(dir, vas.TailFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, vas.TailFile, "block"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cat.Append("gps", []vas.Point{vas.Pt(1, 2)}); err == nil {
		t.Fatal("append with a broken tail log reported success")
	}
	_, body = getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, `vasserve_tail_log_degraded{table="gps"} 1`) {
		t.Fatalf("degraded tail log not reflected in metrics:\n%s", body)
	}

	// The failed append kicked off a background re-save; let its (also
	// failing) attempt settle before healing, so it cannot re-mark the
	// catalog degraded after the save below cleared it.
	cat.WaitBackground()

	// Healing (a successful full save) clears the gauge.
	if err := os.RemoveAll(filepath.Join(dir, vas.TailFile)); err != nil {
		t.Fatal(err)
	}
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	_, body = getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, `vasserve_tail_log_degraded{table="gps"} 0`) {
		t.Fatalf("healed catalog still reports degradation:\n%s", body)
	}
}
