// Command bench2json converts `go test -bench` text output (read from
// stdin) into a small JSON document, so benchmark trajectories can be
// committed and diffed across PRs (`make bench` writes BENCH_PR2.json).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the committed document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkgs    []string `json:"packages,omitempty"`
	Results []Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkgs = append(rep.Pkgs, strings.TrimPrefix(line, "pkg: "))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
