// Command bench2json converts `go test -bench` text output (read from
// stdin) into a small JSON document, so benchmark trajectories can be
// committed and diffed across PRs (`make bench` writes the
// BENCH_PR<N>.json file named in the Makefile).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. prune_ratio).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the committed document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkgs    []string `json:"packages,omitempty"`
	Results []Result `json:"benchmarks"`
}

// parseBenchLine reads one "BenchmarkX-8  N  v1 unit1  v2 unit2 ..."
// line: after the name and iteration count, the rest is (value, unit)
// pairs — ns/op, B/op, allocs/op, and any custom b.ReportMetric units.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	r := Result{Name: name}
	var err error
	if r.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return Result{}, false
	}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, sawNs
}

func main() {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkgs = append(rep.Pkgs, strings.TrimPrefix(line, "pkg: "))
		}
		if r, ok := parseBenchLine(line); ok {
			rep.Results = append(rep.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
