// Command vasserve runs the HTTP visualization server over a VAS catalog:
// it loads a dataset into the in-memory store, builds VAS samples of
// several sizes offline (§II-D preprocessing), then serves budget-bound
// point queries and cached PNG map tiles.
//
//	vasserve -addr :8080 -n 200000 -sizes 100,1000,10000
//
//	curl 'localhost:8080/v1/tables'
//	curl 'localhost:8080/v1/query?table=gps&budget=1600ms'
//	curl -o tile.png 'localhost:8080/v1/tile/gps/2/1/1.png?size=256'
//	curl 'localhost:8080/metrics'
//
// With -snapshot DIR the offline cost is paid once: the first start
// builds the samples and saves a catalog snapshot into DIR, and every
// later start with the same data and build flags restores it — zero
// BuildSamples or index-build work on the serving path. A stale
// snapshot (different data, sizes, or options) or a corrupt file is
// detected and triggers a rebuild + re-save instead.
//
//	vasserve -n 1000000 -sizes 1000,10000 -snapshot /var/lib/vas
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only on -debug-addr
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"

	vas "repro"
)

// Listener hardening shared by the serving and debug servers: slow or
// stalled clients cannot hold a connection (and its handler goroutine)
// forever. WriteTimeout is generous because budget-bound tile renders
// legitimately take seconds on cold caches.
const (
	httpReadTimeout  = 15 * time.Second
	httpWriteTimeout = 60 * time.Second
	httpIdleTimeout  = 120 * time.Second
	shutdownGrace    = 30 * time.Second
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		n       = flag.Int("n", 200_000, "dataset rows")
		seed    = flag.Int64("seed", 42, "random seed")
		sizes   = flag.String("sizes", "100,1000,10000", "comma-separated sample sizes to prebuild")
		density = flag.Bool("density", true, "attach the §V density embedding to each sample")
		passes  = flag.Int("passes", 1, "Interchange passes per sample build")
		snapDir = flag.String("snapshot", "", "catalog snapshot directory: load when present and fresh, else build then save; appended batches land in its tail log")
		backend = flag.String("index-backend", "auto", "spatial index backend for every table: auto (per-table choice from occupancy skew), grid, or rtree")
		compact = flag.Float64("compact", vas.DefaultCompactFraction, "background-compaction threshold: delta/indexed-rows fraction that triggers a merge (<=0 disables)")
		ttl     = flag.Duration("ttl", 0, "sliding-window retention: rows older than this are dropped by background compaction (0 disables; needs -ttl-col)")
		ttlCol  = flag.String("ttl-col", "", "column holding each row's timestamp as float64 Unix seconds, for -ttl")
		debug   = flag.String("debug-addr", "", "separate listen address for net/http/pprof profiling (e.g. localhost:6060); empty disables")
		slow    = flag.Duration("slow-threshold", 0, "record request traces slower than this in /debug/slow (0 = server default 250ms, negative = record everything)")

		reqTimeout = flag.Duration("request-timeout", 0, "per-request deadline on heavy routes: requests past it are canceled inside the scan kernels and answered 503 + Retry-After (0 disables)")
		inflight   = flag.Int("max-inflight", 0, "admission control: max concurrently executing requests per heavy route; excess waits in a bounded queue, the rest is shed 503/429 + Retry-After (0 disables)")
		queueDepth = flag.Int("queue-depth", 0, "admission control: waiters allowed per heavy route beyond -max-inflight before shedding (needs -max-inflight)")
		queueWait  = flag.Duration("queue-timeout", 250*time.Millisecond, "admission control: how long a queued request waits for an execution slot before being shed 429")
		readOnly   = flag.Bool("read-only-on-degrade", false, "reject appends/deletes with 503 while snapshot persistence is degraded, instead of accepting rows that cannot be made durable")
	)
	flag.Parse()
	var ks []int
	for _, s := range strings.Split(*sizes, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || k <= 0 {
			fmt.Fprintf(os.Stderr, "vasserve: bad size %q\n", s)
			os.Exit(2)
		}
		ks = append(ks, k)
	}

	fmt.Printf("generating %d-row geolife-like dataset...\n", *n)
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: *n, Seed: *seed})

	opt := vas.Options{Passes: *passes}
	start := time.Now()
	cat, source := loadOrBuild(*snapDir, d, ks, *density, *compact, *backend, opt)
	cold := time.Since(start)
	cat.RecordColdStart(source, cold)
	fmt.Printf("catalog ready via %s in %s\n", source, cold.Round(time.Millisecond))

	// The TTL policy is in-memory configuration, so it is re-applied on
	// every start — including snapshot restores (SetTTL's contract).
	if *ttl > 0 {
		if *ttlCol == "" {
			fmt.Fprintln(os.Stderr, "vasserve: -ttl needs -ttl-col")
			os.Exit(2)
		}
		if err := cat.SetTTL("gps", *ttlCol, *ttl); err != nil {
			fail(err)
		}
		fmt.Printf("retention: rows with %s older than %s are dropped by compaction\n", *ttlCol, *ttl)
	}

	// Resilience knobs must land before Handler() builds the server.
	cat.SetRequestTimeout(*reqTimeout)
	cat.SetAdmissionLimits(*inflight, *queueDepth, *queueWait)
	cat.SetReadOnlyOnDegrade(*readOnly)

	fmt.Printf("serving on %s\n", *addr)
	fmt.Printf("  GET  /v1/tables\n")
	fmt.Printf("  GET  /v1/query?table=gps&budget=1600ms&minx=..&miny=..&maxx=..&maxy=..\n")
	fmt.Printf("  GET  /v1/nearest?table=gps&x=..&y=..&k=10\n")
	fmt.Printf("  GET  /v1/tile/gps/{z}/{x}/{y}.png?size=256&budget=1600ms\n")
	fmt.Printf("  POST /v1/append/gps  (JSON {\"points\": [[x,y],...]})\n")
	fmt.Printf("  POST /v1/delete/gps  (JSON {\"rect\": {...}} | {\"filters\": [...]} | {\"all\": true})\n")
	fmt.Printf("  GET  /healthz | GET /metrics | GET /debug/slow\n")
	handler := cat.Handler()
	if *slow != 0 {
		if s, ok := handler.(interface{ SlowLog() *obs.SlowLog }); ok {
			d := *slow
			if d < 0 {
				d = 0 // keep every trace
			}
			s.SlowLog().SetThreshold(d)
		}
	}
	var dbg *http.Server
	if *debug != "" {
		// pprof lives on its own listener so profiling endpoints are never
		// exposed on the serving address. net/http/pprof registered its
		// handlers on http.DefaultServeMux at import.
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *debug)
		dbg = &http.Server{
			Addr:              *debug,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       httpReadTimeout,
			WriteTimeout:      httpWriteTimeout,
			IdleTimeout:       httpIdleTimeout,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "vasserve: debug listener: %v\n", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       httpReadTimeout,
		WriteTimeout:      httpWriteTimeout,
		IdleTimeout:       httpIdleTimeout,
	}

	// Graceful shutdown: on SIGTERM/SIGINT stop accepting, drain
	// in-flight requests (bounded), stop the debug listener, wait for
	// background compaction/re-save goroutines, and flush one final
	// snapshot so the next start replays nothing from the tail log.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		// The listener died on its own (bad -addr, port in use, ...):
		// ErrServerClosed is impossible here, so this is always fatal.
		fail(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Println("shutting down: draining in-flight requests...")
	drainCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "vasserve: drain: %v\n", err)
	}
	if dbg != nil {
		if err := dbg.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "vasserve: debug drain: %v\n", err)
		}
	}
	cat.WaitBackground()
	if *snapDir != "" {
		if err := cat.SaveSnapshot(*snapDir); err != nil {
			fmt.Fprintf(os.Stderr, "vasserve: final snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("final snapshot saved to %s\n", *snapDir)
	}
	fmt.Println("shutdown complete")
}

// loadOrBuild restores the catalog from a fresh snapshot when one is
// available — replaying any ingest tail log, so appended rows survive
// the restart — and otherwise rebuilds from scratch (saving the result
// for the next start when a snapshot directory was given). The returned
// source is "snapshot" or "rebuild", for the cold-start metric.
func loadOrBuild(snapDir string, d *dataset.Dataset, ks []int, density bool, compact float64, backend string, opt vas.Options) (*vas.Catalog, string) {
	if snapDir != "" {
		cat := vas.NewCatalog()
		cat.SetCompactFraction(compact)
		if err := cat.SetIndexBackend(backend); err != nil {
			fail(err)
		}
		err := cat.LoadSnapshot(snapDir)
		switch {
		case err == nil && cat.SnapshotFresh("gps", d.Points, ks, density, opt):
			fmt.Printf("loaded catalog snapshot from %s (no sample or index rebuild)\n", snapDir)
			return cat, "snapshot"
		case err == nil:
			fmt.Printf("snapshot in %s is stale for these flags; rebuilding\n", snapDir)
		case os.IsNotExist(err):
			fmt.Printf("no snapshot in %s yet; building\n", snapDir)
		default:
			fmt.Fprintf(os.Stderr, "vasserve: snapshot unusable (%v); rebuilding\n", err)
		}
	}
	// Rebuild path: a fresh catalog, so nothing from a stale or partial
	// snapshot can linger next to the new samples.
	cat := vas.NewCatalog()
	cat.SetCompactFraction(compact)
	if err := cat.SetIndexBackend(backend); err != nil {
		fail(err)
	}
	if err := cat.LoadTable("gps", d.Points); err != nil {
		fail(err)
	}
	fmt.Printf("building VAS samples %v (offline preprocessing)...\n", ks)
	if err := cat.BuildSamples("gps", d.Points, ks, density, opt); err != nil {
		fail(err)
	}
	if snapDir != "" {
		if err := cat.SaveSnapshot(snapDir); err != nil {
			fmt.Fprintf(os.Stderr, "vasserve: saving snapshot: %v\n", err)
		} else {
			fmt.Printf("saved catalog snapshot to %s\n", snapDir)
		}
	}
	return cat, "rebuild"
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "vasserve: %v\n", err)
	os.Exit(1)
}
