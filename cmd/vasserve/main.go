// Command vasserve runs the HTTP visualization server over a VAS catalog:
// it loads a dataset into the in-memory store, builds VAS samples of
// several sizes offline (§II-D preprocessing), then serves budget-bound
// point queries and cached PNG map tiles.
//
//	vasserve -addr :8080 -n 200000 -sizes 100,1000,10000
//
//	curl 'localhost:8080/v1/tables'
//	curl 'localhost:8080/v1/query?table=gps&budget=1600ms'
//	curl -o tile.png 'localhost:8080/v1/tile/gps/2/1/1.png?size=256'
//	curl 'localhost:8080/metrics'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"

	vas "repro"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		n       = flag.Int("n", 200_000, "dataset rows")
		seed    = flag.Int64("seed", 42, "random seed")
		sizes   = flag.String("sizes", "100,1000,10000", "comma-separated sample sizes to prebuild")
		density = flag.Bool("density", true, "attach the §V density embedding to each sample")
		passes  = flag.Int("passes", 1, "Interchange passes per sample build")
	)
	flag.Parse()
	var ks []int
	for _, s := range strings.Split(*sizes, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || k <= 0 {
			fmt.Fprintf(os.Stderr, "vasserve: bad size %q\n", s)
			os.Exit(2)
		}
		ks = append(ks, k)
	}

	fmt.Printf("generating %d-row geolife-like dataset...\n", *n)
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: *n, Seed: *seed})

	cat := vas.NewCatalog()
	if err := cat.LoadTable("gps", d.Points); err != nil {
		fail(err)
	}
	fmt.Printf("building VAS samples %v (offline preprocessing)...\n", ks)
	start := time.Now()
	if err := cat.BuildSamples("gps", d.Points, ks, *density, vas.Options{Passes: *passes}); err != nil {
		fail(err)
	}
	fmt.Printf("samples built in %s\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("serving on %s\n", *addr)
	fmt.Printf("  GET /v1/tables\n")
	fmt.Printf("  GET /v1/query?table=gps&budget=1600ms&minx=..&miny=..&maxx=..&maxy=..\n")
	fmt.Printf("  GET /v1/tile/gps/{z}/{x}/{y}.png?size=256&budget=1600ms\n")
	fmt.Printf("  GET /healthz | GET /metrics\n")
	srv := &http.Server{
		Addr:              *addr,
		Handler:           cat.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "vasserve: %v\n", err)
	os.Exit(1)
}
