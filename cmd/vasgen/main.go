// Command vasgen generates datasets and builds samples offline — the
// preprocessing step of §II-D.
//
// Generate a synthetic dataset:
//
//	vasgen -gen geolife -n 1000000 -out data.csv
//	vasgen -gen splom   -n 1000000 -out splom.bin
//
// Build a sample from a dataset file (CSV x,y[,value] or the binary
// format):
//
//	vasgen -in data.csv -method vas -k 10000 -density -out sample.csv
//
// With -snapshot DIR (vas method only) vasgen additionally assembles a
// serving catalog — the base table plus the sample it just built, both
// spatially indexed — and saves it as a snapshot for embedders to
// restore with vas.Catalog.LoadSnapshot (zero offline work at load):
//
//	vasgen -in data.csv -k 10000 -density -out sample.csv -snapshot /var/lib/vas
//
// Note the demo servers manage their own snapshot directories: vasserve
// and vasquery generate their dataset and check the snapshot's
// provenance against their own flags, so they treat a vasgen-produced
// snapshot (different table, different data) as stale and rebuild over
// it. Point them at separate directories.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/geom"

	vas "repro"
)

func main() {
	var (
		gen     = flag.String("gen", "", "generate a dataset: geolife | splom | clusters")
		n       = flag.Int("n", 100_000, "rows to generate")
		seed    = flag.Int64("seed", 42, "random seed")
		in      = flag.String("in", "", "input dataset file (.csv or binary)")
		out     = flag.String("out", "", "output file (required)")
		method  = flag.String("method", "vas", "sampling method: vas | uniform | stratified")
		k       = flag.Int("k", 10_000, "sample size")
		bins    = flag.Int("bins", 100, "stratification bins per side")
		density = flag.Bool("density", false, "attach §V density counts (vas only)")
		passes  = flag.Int("passes", 2, "Interchange passes over the data")
		variant = flag.String("variant", "es", "Interchange variant: es | no-es | es+loc")
		snapDir = flag.String("snapshot", "", "also save a serving-catalog snapshot (base table + sample) to this directory (vas only)")
	)
	flag.Parse()
	if *out == "" {
		fail("missing -out")
	}
	if *snapDir != "" && *method != "vas" {
		fail("-snapshot requires -method vas")
	}
	if *snapDir != "" && *gen != "" {
		// The -gen branch only writes a dataset; silently skipping the
		// snapshot would strand a scripted producer flow.
		fail("-snapshot requires -in (a snapshot captures a built sample, not a generated dataset)")
	}

	if *gen != "" {
		d := generate(*gen, *n, *seed)
		if err := dataset.SaveFile(*out, d); err != nil {
			fail("save: %v", err)
		}
		fmt.Printf("wrote %d points to %s\n", d.Len(), *out)
		return
	}

	if *in == "" {
		fail("need -gen or -in")
	}
	d, err := dataset.LoadFile(*in, "input")
	if err != nil {
		fail("load: %v", err)
	}
	var pts []geom.Point
	var ids []int
	switch *method {
	case "vas":
		s, err := vas.Build(d.Points, vas.Options{K: *k, Passes: *passes, Variant: *variant})
		if err != nil {
			fail("build: %v", err)
		}
		pts, ids = s.Points, s.IDs
		if *density {
			ws, err := s.DensityEmbed(d.Points)
			if err != nil {
				fail("density: %v", err)
			}
			outDS := &dataset.Dataset{Name: "sample", Points: ws.Points}
			outDS.Values = make([]float64, len(ws.Counts))
			for i, c := range ws.Counts {
				outDS.Values[i] = float64(c)
			}
			if err := dataset.SaveFile(*out, outDS); err != nil {
				fail("save: %v", err)
			}
			fmt.Printf("wrote %d-point vas+density sample (objective %.4g) to %s\n", len(pts), s.Objective, *out)
			saveSnapshot(*snapDir, d, s, ws.Counts)
			return
		}
		fmt.Printf("vas objective: %.4g after %d pass(es)\n", s.Objective, s.Passes)
		saveSnapshot(*snapDir, d, s, nil)
	case "uniform":
		pts, ids, err = vas.Uniform(d.Points, *k, *seed)
		if err != nil {
			fail("uniform: %v", err)
		}
	case "stratified":
		pts, ids, err = vas.Stratified(d.Points, *k, *bins, *seed)
		if err != nil {
			fail("stratified: %v", err)
		}
	default:
		fail("unknown method %q", *method)
	}
	outDS := &dataset.Dataset{Name: "sample", Points: pts}
	if d.Values != nil {
		outDS.Values = make([]float64, len(ids))
		for i, id := range ids {
			outDS.Values[i] = d.Values[id]
		}
	}
	if err := dataset.SaveFile(*out, outDS); err != nil {
		fail("save: %v", err)
	}
	fmt.Printf("wrote %d-point %s sample to %s\n", len(pts), *method, *out)
}

// saveSnapshot assembles a serving catalog — base table "data" plus the
// sample main already built (registered as-is, no second Interchange
// run), both spatially indexed — and persists it for embedders to
// restore with vas.Catalog.LoadSnapshot.
func saveSnapshot(dir string, d *dataset.Dataset, s *vas.Sample, counts []int64) {
	if dir == "" {
		return
	}
	cat := vas.NewCatalog()
	if err := cat.LoadTable("data", d.Points); err != nil {
		fail("snapshot: %v", err)
	}
	if err := cat.RegisterSample("data", s, counts); err != nil {
		fail("snapshot: %v", err)
	}
	if err := cat.SaveSnapshot(dir); err != nil {
		fail("snapshot: %v", err)
	}
	fmt.Printf("wrote catalog snapshot (table %q, %d rows, %d-point sample) to %s\n",
		"data", d.Len(), len(s.Points), dir)
}

func generate(kind string, n int, seed int64) *dataset.Dataset {
	switch kind {
	case "geolife":
		return dataset.GeolifeLike(dataset.GeolifeOptions{N: n, Seed: seed})
	case "splom":
		return dataset.NewSPLOM(dataset.SPLOMOptions{N: n, Seed: seed}).XY(0, 1)
	case "clusters":
		sets := dataset.ClusterStudyDatasets(n, seed)
		return sets[0].Dataset
	}
	fail("unknown generator %q", kind)
	return nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vasgen: "+format+"\n", args...)
	os.Exit(1)
}
