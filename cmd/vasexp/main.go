// Command vasexp regenerates the paper's tables and figures.
//
// Usage:
//
//	vasexp -exp table1a            # one experiment
//	vasexp -exp all -scale medium  # the whole evaluation section
//
// Experiment ids mirror the paper artifacts (see DESIGN.md §2): fig1,
// fig2, fig4, fig7, fig8, fig9, fig10, table1a, table1b, table1c, table2.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id or 'all' (ids: "+strings.Join(experiments.IDs(), ", ")+")")
		scale = flag.String("scale", "small", "experiment scale: small | medium | full")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.ScaleSmall()
	case "medium":
		sc = experiments.ScaleMedium()
	case "full":
		sc = experiments.ScaleFull()
	default:
		fmt.Fprintf(os.Stderr, "vasexp: unknown scale %q (small|medium|full)\n", *scale)
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vasexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vasexp: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
