// Command vasquery demonstrates the Fig. 3 architecture end to end: it
// loads a dataset into the in-memory store, builds VAS samples of several
// sizes offline, then answers interactive visualization queries within
// latency budgets, printing which sample the planner served.
//
//	vasquery -n 200000 -sizes 100,1000,10000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"

	vas "repro"
)

func main() {
	var (
		n       = flag.Int("n", 200_000, "dataset rows")
		seed    = flag.Int64("seed", 42, "random seed")
		sizes   = flag.String("sizes", "100,1000,5000", "comma-separated sample sizes to prebuild")
		snapDir = flag.String("snapshot", "", "catalog snapshot directory: load when present and fresh, else build then save")
	)
	flag.Parse()
	var ks []int
	for _, s := range strings.Split(*sizes, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || k <= 0 {
			fmt.Fprintf(os.Stderr, "vasquery: bad size %q\n", s)
			os.Exit(2)
		}
		ks = append(ks, k)
	}

	fmt.Printf("generating %d-row geolife-like dataset...\n", *n)
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: *n, Seed: *seed})

	opt := vas.Options{Passes: 1}
	start := time.Now()
	var cat *vas.Catalog
	if *snapDir != "" {
		restored := vas.NewCatalog()
		if err := restored.LoadSnapshot(*snapDir); err == nil &&
			restored.SnapshotFresh("gps", d.Points, ks, true, opt) {
			cat = restored
			fmt.Printf("loaded catalog snapshot from %s in %s (no offline rebuild)\n\n",
				*snapDir, time.Since(start).Round(time.Millisecond))
		}
	}
	if cat == nil {
		cat = vas.NewCatalog()
		if err := cat.LoadTable("gps", d.Points); err != nil {
			fail(err)
		}
		fmt.Printf("building VAS samples %v (offline preprocessing)...\n", ks)
		if err := cat.BuildSamples("gps", d.Points, ks, true, opt); err != nil {
			fail(err)
		}
		fmt.Printf("samples built in %s\n\n", time.Since(start).Round(time.Millisecond))
		if *snapDir != "" {
			if err := cat.SaveSnapshot(*snapDir); err != nil {
				fail(err)
			}
			fmt.Printf("saved catalog snapshot to %s (the next run cold-starts from it)\n\n", *snapDir)
		}
	}

	bounds := vas.Rect{}
	zoomed, err := vas.Zoom(geomBounds(d), geomBounds(d).Center(), 8)
	if err != nil {
		fail(err)
	}
	queries := []struct {
		name     string
		viewport vas.Rect
		budget   time.Duration
	}{
		{"overview, interactive (2s)", bounds, 0},
		{"overview, tight budget (1.6s)", bounds, 1600 * time.Millisecond},
		{"zoom-in 8x, interactive", zoomed, 0},
		{"overview, generous (30s)", bounds, 30 * time.Second},
	}
	for _, q := range queries {
		res, err := cat.Query("gps", q.viewport, q.budget)
		if err != nil {
			fmt.Printf("%-32s -> error: %v\n", q.name, err)
			continue
		}
		fmt.Printf("%-32s -> served %d-point sample, %d points in viewport, predicted viz time %s\n",
			q.name, res.SampleSize, len(res.Points), res.PredictedTime.Round(time.Millisecond))
	}

	exact, err := cat.QueryExact("gps", bounds)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%-32s -> %d points, predicted viz time %s (the problem VAS avoids)\n",
		"exact full scan", len(exact.Points), exact.PredictedTime.Round(time.Millisecond))

	// Attribute slicing: filters ride down into the same index probe as
	// the viewport, where per-cell zone maps prune whole cells. Here we
	// keep only the west half of the zoomed viewport plus the sample's
	// high-density points (dense clusters of the underlying data).
	fmt.Println()
	filters := []vas.Pred{
		{Column: "x", Min: zoomed.MinX, Max: zoomed.Center().X},
		{Column: "density", Min: 4, Max: 1e18},
	}
	filtered, err := cat.QueryFiltered("gps", zoomed, filters, 0)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%-32s -> %d points from a %d-point sample; zone maps pruned %d/%d cells (%d rows tested per-row)\n",
		"zoom-in 8x + 2 filters", len(filtered.Points), filtered.SampleSize,
		filtered.Scan.CellsPruned, filtered.Scan.CellsTouched, filtered.Scan.RowsExamined)
}

func geomBounds(d *dataset.Dataset) vas.Rect { return d.Bounds() }

func fail(err error) {
	fmt.Fprintf(os.Stderr, "vasquery: %v\n", err)
	os.Exit(1)
}
