// Command vasviz renders a dataset or sample file to a PNG scatter or map
// plot, with optional zoom — the tool used to reproduce the Fig. 1 panels.
//
//	vasviz -in sample.csv -out overview.png
//	vasviz -in sample.csv -out zoom.png -zoom 8 -cx 116.4 -cy 39.9
//	vasviz -in geolife.csv -out map.png -map        # color = value column
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/geom"

	vas "repro"
)

func main() {
	var (
		in     = flag.String("in", "", "input dataset/sample file (required)")
		out    = flag.String("out", "", "output PNG (required)")
		width  = flag.Int("w", 800, "image width")
		height = flag.Int("h", 600, "image height")
		zoom   = flag.Float64("zoom", 1, "zoom factor (1 = full extent)")
		cx     = flag.Float64("cx", 0, "zoom centre x (default: densest point)")
		cy     = flag.Float64("cy", 0, "zoom centre y")
		mapPl  = flag.Bool("map", false, "map plot: color by the value column")
		weight = flag.Bool("weighted", false, "treat the value column as §V density counts (dot-size encoding)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "vasviz: -in and -out are required")
		os.Exit(2)
	}
	d, err := dataset.LoadFile(*in, "input")
	if err != nil {
		fail("load: %v", err)
	}
	bounds := d.Bounds()
	viewport := bounds
	if *zoom > 1 {
		c := geom.Pt(*cx, *cy)
		if *cx == 0 && *cy == 0 {
			c = bounds.Center()
		}
		viewport, err = vas.Zoom(bounds, c, *zoom)
		if err != nil {
			fail("zoom: %v", err)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fail("create: %v", err)
	}
	defer f.Close()
	switch {
	case *mapPl:
		if d.Values == nil {
			fail("-map needs a value column in the input")
		}
		err = vas.RenderMapPNG(f, d.Points, d.Values, viewport, *width, *height)
	case *weight:
		if d.Values == nil {
			fail("-weighted needs a count column in the input")
		}
		counts := make([]int64, len(d.Values))
		for i, v := range d.Values {
			counts[i] = int64(v)
		}
		err = vas.RenderWeightedPNG(f, &vas.WeightedSample{Points: d.Points, Counts: counts}, viewport, *width, *height)
	default:
		err = vas.RenderPNG(f, d.Points, viewport, *width, *height)
	}
	if err != nil {
		fail("render: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("close: %v", err)
	}
	fmt.Printf("wrote %s (%d points, viewport %v)\n", *out, d.Len(), viewport)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vasviz: "+format+"\n", args...)
	os.Exit(1)
}
