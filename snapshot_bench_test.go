package vas_test

// Cold-start benchmarks (ISSUE 4 acceptance): the cost of bringing a
// 1M-row serving catalog up from nothing — the offline path vasserve
// pays on every start without persistence — against the cost of
// restoring the identical catalog from a snapshot file. The two numbers
// land in BENCH_PR4.json via `make bench`; the snapshot path must be at
// least 10x faster.

import (
	"os"
	"sync"
	"testing"

	"repro/internal/dataset"

	vas "repro"
)

const (
	coldStartRows   = 1_000_000
	coldStartSample = 256
)

var coldStart struct {
	once sync.Once
	data *dataset.Dataset
	dir  string // holds a snapshot of the built catalog
	err  error
}

// TestMain exists to remove the ~40MB cold-start snapshot directory the
// benchmark setup leaves in the system temp dir (it cannot use
// b.TempDir, see coldStartSetup).
func TestMain(m *testing.M) {
	code := m.Run()
	if coldStart.dir != "" {
		os.RemoveAll(coldStart.dir)
	}
	os.Exit(code)
}

// coldStartSetup generates the 1M-row dataset once and saves a snapshot
// of the fully built catalog for the load-path benchmark.
func coldStartSetup(b *testing.B) (*dataset.Dataset, string) {
	b.Helper()
	coldStart.once.Do(func() {
		coldStart.data = dataset.GeolifeLike(dataset.GeolifeOptions{N: coldStartRows, Seed: 42})
		cat := vas.NewCatalog()
		if coldStart.err = cat.LoadTable("gps", coldStart.data.Points); coldStart.err != nil {
			return
		}
		coldStart.err = cat.BuildSamples("gps", coldStart.data.Points,
			[]int{coldStartSample}, true, vas.Options{Passes: 1})
		if coldStart.err != nil {
			return
		}
		// Not b.TempDir(): that is torn down when the benchmark that
		// happened to run the setup finishes, and the directory must
		// outlive it for the other benchmark.
		coldStart.dir, coldStart.err = os.MkdirTemp("", "vas-coldstart-")
		if coldStart.err != nil {
			return
		}
		coldStart.err = cat.SaveSnapshot(coldStart.dir)
	})
	if coldStart.err != nil {
		b.Fatal(coldStart.err)
	}
	return coldStart.data, coldStart.dir
}

// BenchmarkColdStartRebuild is what a vasserve start without -snapshot
// costs on 1M rows: bulk load + spatial index build on the base table,
// a full Interchange sample build with density embedding, and the
// sample's own index.
func BenchmarkColdStartRebuild(b *testing.B) {
	d, _ := coldStartSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat := vas.NewCatalog()
		if err := cat.LoadTable("gps", d.Points); err != nil {
			b.Fatal(err)
		}
		if err := cat.BuildSamples("gps", d.Points, []int{coldStartSample}, true, vas.Options{Passes: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartSnapshot is the same catalog restored from the
// snapshot file: decode + validate + atomic publish, zero sample or
// index building.
func BenchmarkColdStartSnapshot(b *testing.B) {
	d, dir := coldStartSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat := vas.NewCatalog()
		if err := cat.LoadSnapshot(dir); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		// Guard (untimed): the restored catalog must be the fresh one.
		if !cat.SnapshotFresh("gps", d.Points, []int{coldStartSample}, true, vas.Options{Passes: 1}) {
			b.Fatal("restored snapshot is not fresh")
		}
		b.StartTimer()
	}
}
