package vas_test

// End-to-end tests of catalog persistence (ISSUE 4 acceptance): a
// catalog saved with SaveSnapshot and restored with LoadSnapshot into a
// fresh process must serve queries and tiles byte-identical to the
// rebuilt original with zero BuildSamples/index-build work, stale or
// corrupt snapshots must be detected, and /metrics must report which
// cold-start path was taken.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"

	vas "repro"
)

// buildOpts are the sample-build options both sides of the snapshot
// comparison use.
var snapBuildSizes = []int{50, 200}

func snapBuildOpts() vas.Options { return vas.Options{Passes: 1} }

// newSnapshotCatalog builds the original (rebuilt-from-scratch) catalog.
func newSnapshotCatalog(t *testing.T, d *dataset.Dataset) *vas.Catalog {
	t.Helper()
	cat := vas.NewCatalog()
	if err := cat.LoadTable("gps", d.Points); err != nil {
		t.Fatal(err)
	}
	if err := cat.BuildSamples("gps", d.Points, snapBuildSizes, true, snapBuildOpts()); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestSnapshotServesByteIdentical(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 4000, Seed: 7})
	orig := newSnapshotCatalog(t, d)
	dir := t.TempDir()
	if err := orig.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	loaded := vas.NewCatalog()
	if err := loaded.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if !loaded.SnapshotFresh("gps", d.Points, snapBuildSizes, true, snapBuildOpts()) {
		t.Fatal("freshly saved snapshot reports stale")
	}
	// Staleness must be detected for changed data, sizes, or options.
	if loaded.SnapshotFresh("gps", d.Points[:len(d.Points)-1], snapBuildSizes, true, snapBuildOpts()) {
		t.Fatal("snapshot fresh despite different data")
	}
	if loaded.SnapshotFresh("gps", d.Points, []int{50}, true, snapBuildOpts()) {
		t.Fatal("snapshot fresh despite different sample sizes")
	}
	if loaded.SnapshotFresh("gps", d.Points, snapBuildSizes, false, snapBuildOpts()) {
		t.Fatal("snapshot fresh despite different density option")
	}
	if loaded.SnapshotFresh("gps", d.Points, snapBuildSizes, true, vas.Options{Passes: 2}) {
		t.Fatal("snapshot fresh despite different passes")
	}

	// Catalog-level queries: identical points, counts, sample choice,
	// and scan statistics across viewports, budgets, and filters.
	bounds := d.Bounds()
	zoomed, err := vas.Zoom(bounds, bounds.Center(), 8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		viewport vas.Rect
		filters  []vas.Pred
		budget   time.Duration
	}{
		{"full extent", vas.Rect{}, nil, 0},
		{"zoomed", zoomed, nil, 0},
		{"tight budget", zoomed, nil, 1600 * time.Millisecond},
		{"filtered", zoomed, []vas.Pred{{Column: "density", Min: 2, Max: 1e18}}, 0},
	}
	for _, tc := range cases {
		want, err := orig.QueryFiltered("gps", tc.viewport, tc.filters, tc.budget)
		if err != nil {
			t.Fatalf("%s: original: %v", tc.name, err)
		}
		got, err := loaded.QueryFiltered("gps", tc.viewport, tc.filters, tc.budget)
		if err != nil {
			t.Fatalf("%s: loaded: %v", tc.name, err)
		}
		if got.SampleSize != want.SampleSize {
			t.Fatalf("%s: sample size %d vs %d", tc.name, got.SampleSize, want.SampleSize)
		}
		if len(got.Points) != len(want.Points) {
			t.Fatalf("%s: %d points vs %d", tc.name, len(got.Points), len(want.Points))
		}
		for i := range want.Points {
			if got.Points[i] != want.Points[i] {
				t.Fatalf("%s: point %d: %v vs %v", tc.name, i, got.Points[i], want.Points[i])
			}
		}
		if len(got.Counts) != len(want.Counts) {
			t.Fatalf("%s: %d counts vs %d", tc.name, len(got.Counts), len(want.Counts))
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("%s: count %d: %v vs %v", tc.name, i, got.Counts[i], want.Counts[i])
			}
		}
		if got.Scan != want.Scan {
			t.Fatalf("%s: scan stats %+v vs %+v", tc.name, got.Scan, want.Scan)
		}
	}

	// HTTP layer: tile bytes from the loaded catalog must be identical
	// to the original's (same sample resolution, same pixels).
	origSrv := httptest.NewServer(orig.Handler())
	defer origSrv.Close()
	loadedSrv := httptest.NewServer(loaded.Handler())
	defer loadedSrv.Close()
	for _, path := range []string{
		"/v1/tile/gps/0/0/0.png",
		"/v1/tile/gps/2/1/1.png?size=128",
		"/v1/tile/gps/1/0/1.png?budget=30s",
	} {
		a := fetchBytes(t, origSrv.URL+path)
		b := fetchBytes(t, loadedSrv.URL+path)
		if !bytes.Equal(a, b) {
			t.Fatalf("tile %s differs between rebuilt and snapshot-loaded catalogs (%d vs %d bytes)",
				path, len(a), len(b))
		}
	}
}

func fetchBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return body
}

func TestLoadSnapshotRejectsCorruptionAndKeepsServing(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 3000, Seed: 11})
	cat := newSnapshotCatalog(t, d)
	dir := t.TempDir()
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, vas.SnapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	before, err := cat.Query("gps", vas.Rect{}, 0)
	if err != nil {
		t.Fatal(err)
	}

	mutants := map[string][]byte{
		"truncated":  data[:len(data)/2],
		"bit-flip":   flipByte(data, len(data)/3),
		"bad magic":  flipByte(data, 0),
		"empty file": {},
	}
	for name, mutant := range mutants {
		if err := os.WriteFile(path, mutant, 0o644); err != nil {
			t.Fatal(err)
		}
		// Into a fresh catalog: must fail and leave it empty.
		fresh := vas.NewCatalog()
		if err := fresh.LoadSnapshot(dir); err == nil {
			t.Fatalf("%s snapshot was accepted", name)
		}
		if _, err := fresh.Query("gps", vas.Rect{}, 0); err == nil {
			t.Fatalf("%s: partial state was published into a fresh catalog", name)
		}
		// Into the live catalog: must fail and leave it serving as before.
		if err := cat.LoadSnapshot(dir); err == nil {
			t.Fatalf("%s snapshot was accepted by a live catalog", name)
		}
		after, err := cat.Query("gps", vas.Rect{}, 0)
		if err != nil {
			t.Fatalf("%s: live catalog stopped serving: %v", name, err)
		}
		if len(after.Points) != len(before.Points) || after.SampleSize != before.SampleSize {
			t.Fatalf("%s: live catalog changed after a failed load", name)
		}
	}

	// A missing snapshot directory is a plain error, not a panic.
	if err := vas.NewCatalog().LoadSnapshot(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("missing snapshot dir was accepted")
	}
}

func flipByte(data []byte, pos int) []byte {
	out := append([]byte(nil), data...)
	out[pos] ^= 0x40
	return out
}

// TestRegisterSampleSnapshot covers the vasgen offline-producer path: a
// sample built once with vas.Build is registered as-is (no second
// Interchange run), snapshotted, and restored into a serving catalog.
func TestRegisterSampleSnapshot(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 3000, Seed: 5})
	s, err := vas.Build(d.Points, vas.Options{K: 150, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.DensityEmbed(d.Points)
	if err != nil {
		t.Fatal(err)
	}
	cat := vas.NewCatalog()
	if err := cat.LoadTable("data", d.Points); err != nil {
		t.Fatal(err)
	}
	if err := cat.RegisterSample("data", s, ws.Counts); err != nil {
		t.Fatal(err)
	}
	if err := cat.RegisterSample("data", nil, nil); err == nil {
		t.Fatal("nil sample was accepted")
	}
	if err := cat.RegisterSample("data", s, ws.Counts[:1]); err == nil {
		t.Fatal("mismatched counts were accepted")
	}
	dir := t.TempDir()
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	loaded := vas.NewCatalog()
	if err := loaded.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Query("data", vas.Rect{}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 150 || len(res.Points) != 150 {
		t.Fatalf("restored catalog served %d points from a %d-sample", len(res.Points), res.SampleSize)
	}
	if len(res.Counts) != 150 {
		t.Fatalf("density embedding lost: %d counts", len(res.Counts))
	}
	for i, p := range s.Points {
		if res.Points[i] != p {
			t.Fatalf("point %d diverged from the registered sample", i)
		}
	}
	// Registered catalogs are not "fresh" in BuildSamples terms — their
	// provenance records the registration, not a rebuildable spec.
	if loaded.SnapshotFresh("data", d.Points, []int{150}, true, vas.Options{Passes: 1}) {
		t.Fatal("registered catalog claims BuildSamples freshness")
	}
}

func TestMetricsReportColdStart(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 2000, Seed: 3})
	cat := newSnapshotCatalog(t, d)
	dir := t.TempDir()
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	loaded := vas.NewCatalog()
	start := time.Now()
	if err := loaded.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	loaded.RecordColdStart("snapshot", time.Since(start))
	srv := httptest.NewServer(loaded.Handler())
	defer srv.Close()
	metrics := string(fetchBytes(t, srv.URL+"/metrics"))
	if !strings.Contains(metrics, `vasserve_coldstart_seconds{source="snapshot"}`) {
		t.Fatalf("metrics lack the snapshot cold-start line:\n%s", metrics)
	}

	// RecordColdStart after the handler exists must also land.
	cat.RecordColdStart("rebuild", 123*time.Millisecond)
	srv2 := httptest.NewServer(cat.Handler())
	defer srv2.Close()
	cat.RecordColdStart("rebuild", 456*time.Millisecond)
	metrics2 := string(fetchBytes(t, srv2.URL+"/metrics"))
	if !strings.Contains(metrics2, `vasserve_coldstart_seconds{source="rebuild"} 0.456`) {
		t.Fatalf("metrics lack the rebuild cold-start line:\n%s", metrics2)
	}
}
