package vas_test

// End-to-end tests of catalog persistence (ISSUE 4 acceptance): a
// catalog saved with SaveSnapshot and restored with LoadSnapshot into a
// fresh process must serve queries and tiles byte-identical to the
// rebuilt original with zero BuildSamples/index-build work, stale or
// corrupt snapshots must be detected, and /metrics must report which
// cold-start path was taken.

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/snapshot"

	vas "repro"
)

// buildOpts are the sample-build options both sides of the snapshot
// comparison use.
var snapBuildSizes = []int{50, 200}

func snapBuildOpts() vas.Options { return vas.Options{Passes: 1} }

// newSnapshotCatalog builds the original (rebuilt-from-scratch) catalog.
func newSnapshotCatalog(t *testing.T, d *dataset.Dataset) *vas.Catalog {
	t.Helper()
	cat := vas.NewCatalog()
	if err := cat.LoadTable("gps", d.Points); err != nil {
		t.Fatal(err)
	}
	if err := cat.BuildSamples("gps", d.Points, snapBuildSizes, true, snapBuildOpts()); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestSnapshotServesByteIdentical(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 4000, Seed: 7})
	orig := newSnapshotCatalog(t, d)
	dir := t.TempDir()
	if err := orig.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	loaded := vas.NewCatalog()
	if err := loaded.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if !loaded.SnapshotFresh("gps", d.Points, snapBuildSizes, true, snapBuildOpts()) {
		t.Fatal("freshly saved snapshot reports stale")
	}
	// Staleness must be detected for changed data, sizes, or options.
	if loaded.SnapshotFresh("gps", d.Points[:len(d.Points)-1], snapBuildSizes, true, snapBuildOpts()) {
		t.Fatal("snapshot fresh despite different data")
	}
	if loaded.SnapshotFresh("gps", d.Points, []int{50}, true, snapBuildOpts()) {
		t.Fatal("snapshot fresh despite different sample sizes")
	}
	if loaded.SnapshotFresh("gps", d.Points, snapBuildSizes, false, snapBuildOpts()) {
		t.Fatal("snapshot fresh despite different density option")
	}
	if loaded.SnapshotFresh("gps", d.Points, snapBuildSizes, true, vas.Options{Passes: 2}) {
		t.Fatal("snapshot fresh despite different passes")
	}

	// Catalog-level queries: identical points, counts, sample choice,
	// and scan statistics across viewports, budgets, and filters.
	bounds := d.Bounds()
	zoomed, err := vas.Zoom(bounds, bounds.Center(), 8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		viewport vas.Rect
		filters  []vas.Pred
		budget   time.Duration
	}{
		{"full extent", vas.Rect{}, nil, 0},
		{"zoomed", zoomed, nil, 0},
		{"tight budget", zoomed, nil, 1600 * time.Millisecond},
		{"filtered", zoomed, []vas.Pred{{Column: "density", Min: 2, Max: 1e18}}, 0},
	}
	for _, tc := range cases {
		want, err := orig.QueryFiltered("gps", tc.viewport, tc.filters, tc.budget)
		if err != nil {
			t.Fatalf("%s: original: %v", tc.name, err)
		}
		got, err := loaded.QueryFiltered("gps", tc.viewport, tc.filters, tc.budget)
		if err != nil {
			t.Fatalf("%s: loaded: %v", tc.name, err)
		}
		if got.SampleSize != want.SampleSize {
			t.Fatalf("%s: sample size %d vs %d", tc.name, got.SampleSize, want.SampleSize)
		}
		if len(got.Points) != len(want.Points) {
			t.Fatalf("%s: %d points vs %d", tc.name, len(got.Points), len(want.Points))
		}
		for i := range want.Points {
			if got.Points[i] != want.Points[i] {
				t.Fatalf("%s: point %d: %v vs %v", tc.name, i, got.Points[i], want.Points[i])
			}
		}
		if len(got.Counts) != len(want.Counts) {
			t.Fatalf("%s: %d counts vs %d", tc.name, len(got.Counts), len(want.Counts))
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("%s: count %d: %v vs %v", tc.name, i, got.Counts[i], want.Counts[i])
			}
		}
		if got.Scan != want.Scan {
			t.Fatalf("%s: scan stats %+v vs %+v", tc.name, got.Scan, want.Scan)
		}
	}

	// HTTP layer: tile bytes from the loaded catalog must be identical
	// to the original's (same sample resolution, same pixels).
	origSrv := httptest.NewServer(orig.Handler())
	defer origSrv.Close()
	loadedSrv := httptest.NewServer(loaded.Handler())
	defer loadedSrv.Close()
	for _, path := range []string{
		"/v1/tile/gps/0/0/0.png",
		"/v1/tile/gps/2/1/1.png?size=128",
		"/v1/tile/gps/1/0/1.png?budget=30s",
	} {
		a := fetchBytes(t, origSrv.URL+path)
		b := fetchBytes(t, loadedSrv.URL+path)
		if !bytes.Equal(a, b) {
			t.Fatalf("tile %s differs between rebuilt and snapshot-loaded catalogs (%d vs %d bytes)",
				path, len(a), len(b))
		}
	}
}

func fetchBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return body
}

func TestLoadSnapshotRejectsCorruptionAndKeepsServing(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 3000, Seed: 11})
	cat := newSnapshotCatalog(t, d)
	dir := t.TempDir()
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, vas.SnapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	before, err := cat.Query("gps", vas.Rect{}, 0)
	if err != nil {
		t.Fatal(err)
	}

	mutants := map[string][]byte{
		"truncated":  data[:len(data)/2],
		"bit-flip":   flipByte(data, len(data)/3),
		"bad magic":  flipByte(data, 0),
		"empty file": {},
	}
	for name, mutant := range mutants {
		if err := os.WriteFile(path, mutant, 0o644); err != nil {
			t.Fatal(err)
		}
		// Into a fresh catalog: must fail and leave it empty.
		fresh := vas.NewCatalog()
		if err := fresh.LoadSnapshot(dir); err == nil {
			t.Fatalf("%s snapshot was accepted", name)
		}
		if _, err := fresh.Query("gps", vas.Rect{}, 0); err == nil {
			t.Fatalf("%s: partial state was published into a fresh catalog", name)
		}
		// Into the live catalog: must fail and leave it serving as before.
		if err := cat.LoadSnapshot(dir); err == nil {
			t.Fatalf("%s snapshot was accepted by a live catalog", name)
		}
		after, err := cat.Query("gps", vas.Rect{}, 0)
		if err != nil {
			t.Fatalf("%s: live catalog stopped serving: %v", name, err)
		}
		if len(after.Points) != len(before.Points) || after.SampleSize != before.SampleSize {
			t.Fatalf("%s: live catalog changed after a failed load", name)
		}
	}

	// A missing snapshot directory is a plain error, not a panic.
	if err := vas.NewCatalog().LoadSnapshot(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("missing snapshot dir was accepted")
	}
}

func flipByte(data []byte, pos int) []byte {
	out := append([]byte(nil), data...)
	out[pos] ^= 0x40
	return out
}

// TestRegisterSampleSnapshot covers the vasgen offline-producer path: a
// sample built once with vas.Build is registered as-is (no second
// Interchange run), snapshotted, and restored into a serving catalog.
func TestRegisterSampleSnapshot(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 3000, Seed: 5})
	s, err := vas.Build(d.Points, vas.Options{K: 150, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.DensityEmbed(d.Points)
	if err != nil {
		t.Fatal(err)
	}
	cat := vas.NewCatalog()
	if err := cat.LoadTable("data", d.Points); err != nil {
		t.Fatal(err)
	}
	if err := cat.RegisterSample("data", s, ws.Counts); err != nil {
		t.Fatal(err)
	}
	if err := cat.RegisterSample("data", nil, nil); err == nil {
		t.Fatal("nil sample was accepted")
	}
	if err := cat.RegisterSample("data", s, ws.Counts[:1]); err == nil {
		t.Fatal("mismatched counts were accepted")
	}
	dir := t.TempDir()
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	loaded := vas.NewCatalog()
	if err := loaded.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Query("data", vas.Rect{}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 150 || len(res.Points) != 150 {
		t.Fatalf("restored catalog served %d points from a %d-sample", len(res.Points), res.SampleSize)
	}
	if len(res.Counts) != 150 {
		t.Fatalf("density embedding lost: %d counts", len(res.Counts))
	}
	for i, p := range s.Points {
		if res.Points[i] != p {
			t.Fatalf("point %d diverged from the registered sample", i)
		}
	}
	// Registered catalogs are not "fresh" in BuildSamples terms — their
	// provenance records the registration, not a rebuildable spec.
	if loaded.SnapshotFresh("data", d.Points, []int{150}, true, vas.Options{Passes: 1}) {
		t.Fatal("registered catalog claims BuildSamples freshness")
	}
}

// TestIncrementalSnapshotRefresh is the live-ingest persistence e2e
// (ISSUE 5 acceptance): batches appended to a snapshot-bound catalog —
// through the API and through POST /v1/append — land in the tail log,
// and a restart restores base + tail with no sample or index rebuild:
// same sample set, appended rows visible, provenance still fresh for
// the ORIGINAL data (appends must not invalidate it wholesale). A
// subsequent full save folds the tail into the base file and truncates
// the log.
func TestIncrementalSnapshotRefresh(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 3000, Seed: 21})
	cat := newSnapshotCatalog(t, d)
	dir := t.TempDir()
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	// Ingest while serving: one batch through the catalog API, one
	// through the HTTP endpoint.
	if err := cat.Append("gps", []vas.Point{vas.Pt(1000, 1000), vas.Pt(1001, 1001)}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cat.Handler())
	resp, err := http.Post(srv.URL+"/v1/append/gps", "application/json",
		strings.NewReader(`{"points": [[1002, 1002], [1003, 1003], [1004, 1004]]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	srv.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/append: %d: %s", resp.StatusCode, body)
	}
	if _, err := os.Stat(filepath.Join(dir, vas.TailFile)); err != nil {
		t.Fatalf("appends left no tail log: %v", err)
	}

	// "Restart": a fresh catalog restored from the same directory.
	restored := vas.NewCatalog()
	if err := restored.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	// The base data's provenance is untouched by appends: the snapshot
	// still reads as fresh for the original dataset, so a server using
	// the stock load-or-rebuild decision serves it without rebuilding.
	if !restored.SnapshotFresh("gps", d.Points, snapBuildSizes, true, snapBuildOpts()) {
		t.Fatal("appends invalidated the base provenance wholesale")
	}
	// Every appended row must have survived the restart, visible to an
	// exact query and answered as an index probe (the replayed tail
	// sits in delta buckets, not an unindexed linear tail).
	got, err := restored.QueryExact("gps", vas.Rect{MinX: 999, MinY: 999, MaxX: 1005, MaxY: 1005})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 5 {
		t.Fatalf("restored catalog sees %d appended rows, want 5", len(got.Points))
	}
	if !got.Scan.IndexProbe || got.Scan.DeltaRows == 0 {
		t.Fatalf("replayed tail not served from the delta index: %+v", got.Scan)
	}
	// Sampled answers must match the pre-restart catalog's (no rebuild,
	// same samples byte for byte).
	want, err := cat.Query("gps", vas.Rect{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := restored.Query("gps", vas.Rect{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Points) != len(want.Points) || after.SampleSize != want.SampleSize {
		t.Fatalf("restored sample answer diverged: %d/%d points, sample %d/%d",
			len(after.Points), len(want.Points), after.SampleSize, want.SampleSize)
	}

	// A full save folds the tail into the base and truncates the log;
	// a second restart then needs no replay and still has every row.
	if err := restored.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, vas.TailFile)); !os.IsNotExist(err) {
		t.Fatal("full save left the folded tail log behind")
	}
	again := vas.NewCatalog()
	if err := again.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	got2, err := again.QueryExact("gps", vas.Rect{MinX: 999, MinY: 999, MaxX: 1005, MaxY: 1005})
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Points) != 5 {
		t.Fatalf("after fold + reload: %d appended rows, want 5", len(got2.Points))
	}
}

// TestAppendDurabilityDegradation pins the tail-log failure contract:
// when the log cannot be written, the rows still go live and serve, the
// error is surfaced (and sticky — later appends stop touching the
// broken log), and a successful full save heals the catalog.
func TestAppendDurabilityDegradation(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 2000, Seed: 29})
	cat := newSnapshotCatalog(t, d)
	dir := t.TempDir()
	// Drain the background re-save before TempDir cleanup removes the
	// snapshot directory out from under it.
	t.Cleanup(cat.WaitBackground)
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	// Break the log: a non-empty directory where the tail file should
	// be makes every append's tail write fail — and the background
	// re-save retry too (it cannot truncate the "log"), so the
	// degradation deterministically persists until the test heals it.
	if err := os.Mkdir(filepath.Join(dir, vas.TailFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, vas.TailFile, "block"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := cat.Append("gps", []vas.Point{vas.Pt(1, 2)})
	if err == nil {
		t.Fatal("append with a broken tail log reported success")
	}
	if cat.SnapshotErr() == nil {
		t.Fatal("degradation not recorded")
	}
	// The rows are live regardless.
	got, qerr := cat.QueryExact("gps", vas.Rect{MinX: 0.5, MinY: 1.5, MaxX: 1.5, MaxY: 2.5})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if len(got.Points) != 1 {
		t.Fatalf("appended row not serving under degradation: %d points", len(got.Points))
	}
	// Later appends keep reporting the degradation without touching the
	// broken log.
	if err := cat.Append("gps", []vas.Point{vas.Pt(3, 4)}); err == nil {
		t.Fatal("degraded catalog reported a durable append")
	}
	// The failed appends kicked off a background re-save; let its (also
	// failing) attempt settle before healing, so it cannot re-mark the
	// catalog degraded after the save below cleared it.
	cat.WaitBackground()
	// A successful full save folds the live rows in and heals.
	if err := os.RemoveAll(filepath.Join(dir, vas.TailFile)); err != nil {
		t.Fatal(err)
	}
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if cat.SnapshotErr() != nil {
		t.Fatalf("degradation survived a successful save: %v", cat.SnapshotErr())
	}
	restored := vas.NewCatalog()
	if err := restored.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	got2, err := restored.QueryExact("gps", vas.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Points) != 2 {
		t.Fatalf("healed snapshot lost rows appended under degradation: %d points", len(got2.Points))
	}
	if err := cat.Append("gps", []vas.Point{vas.Pt(5, 6)}); err != nil {
		t.Fatalf("append after healing still failing: %v", err)
	}
}

// TestDurabilityFaultMatrix extends TestAppendDurabilityDegradation
// (which covers one write error against a broken directory) with the
// scripted fault matrix from internal/fault: sync failure, rename
// failure, and ENOSPC on both the tail-append and snapshot-save paths.
// Each fault must surface as a typed, wrapped error, cost zero
// availability, and heal on the next successful save — with a restart
// always observing a consistent state.
func TestDurabilityFaultMatrix(t *testing.T) {
	tailCases := []struct {
		name   string
		arm    func(inj *fault.Injector)
		target error
	}{
		{"tail write ENOSPC", func(i *fault.Injector) { i.FailOnce(fault.OpWrite, "catalog.tail", syscall.ENOSPC) }, syscall.ENOSPC},
		{"tail sync failure", func(i *fault.Injector) { i.FailOnce(fault.OpSync, "catalog.tail", nil) }, fault.ErrInjected},
	}
	for _, tc := range tailCases {
		t.Run(tc.name, func(t *testing.T) {
			d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 1500, Seed: 29})
			cat := newSnapshotCatalog(t, d)
			dir := t.TempDir()
			if err := cat.SaveSnapshot(dir); err != nil {
				t.Fatal(err)
			}
			inj := fault.NewInjector(nil)
			tc.arm(inj)
			restore := snapshot.SetFS(inj)
			err := cat.Append("gps", []vas.Point{vas.Pt(1, 2)})
			if err == nil {
				t.Fatal("append with a faulted tail log reported success")
			}
			if !errors.Is(err, tc.target) {
				t.Fatalf("append error lost the cause: %v, want errors.Is(%v)", err, tc.target)
			}
			// The rows are live regardless: degraded durability, full
			// availability.
			got, qerr := cat.QueryExact("gps", vas.Rect{MinX: 0.5, MinY: 1.5, MaxX: 1.5, MaxY: 2.5})
			if qerr != nil {
				t.Fatal(qerr)
			}
			if len(got.Points) != 1 {
				t.Fatalf("appended row not serving under the fault: %d points", len(got.Points))
			}
			// The failed append kicked a background re-save; the one-shot
			// fault is spent, so it succeeds, folds the live rows in, and
			// heals the catalog.
			cat.WaitBackground()
			restore()
			if err := cat.SnapshotErr(); err != nil {
				t.Fatalf("degradation survived the successful re-save: %v", err)
			}
			restored := vas.NewCatalog()
			if err := restored.LoadSnapshot(dir); err != nil {
				t.Fatal(err)
			}
			got2, err := restored.QueryExact("gps", vas.Rect{MinX: 0.5, MinY: 1.5, MaxX: 1.5, MaxY: 2.5})
			if err != nil {
				t.Fatal(err)
			}
			if len(got2.Points) != 1 {
				t.Fatalf("healed snapshot lost the row appended under the fault: %d points", len(got2.Points))
			}
		})
	}

	saveCases := []struct {
		name   string
		arm    func(inj *fault.Injector)
		target error
	}{
		{"save write ENOSPC", func(i *fault.Injector) { i.FailOnce(fault.OpWrite, ".snapshot-", syscall.ENOSPC) }, syscall.ENOSPC},
		{"save sync ENOSPC", func(i *fault.Injector) { i.FailOnce(fault.OpSync, ".snapshot-", syscall.ENOSPC) }, syscall.ENOSPC},
		{"save rename failure", func(i *fault.Injector) { i.FailOnce(fault.OpRename, vas.SnapshotFile, nil) }, fault.ErrInjected},
	}
	for _, tc := range saveCases {
		t.Run(tc.name, func(t *testing.T) {
			d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 1500, Seed: 31})
			cat := newSnapshotCatalog(t, d)
			dir := t.TempDir()
			t.Cleanup(cat.WaitBackground)
			if err := cat.SaveSnapshot(dir); err != nil {
				t.Fatal(err)
			}
			// A durable append before the fault: the failed save must not
			// disturb the base + tail pair it could not replace.
			if err := cat.Append("gps", []vas.Point{vas.Pt(1, 2)}); err != nil {
				t.Fatal(err)
			}
			inj := fault.NewInjector(nil)
			tc.arm(inj)
			restore := snapshot.SetFS(inj)
			err := cat.SaveSnapshot(dir)
			restore()
			if err == nil {
				t.Fatal("faulted save reported success")
			}
			if !errors.Is(err, tc.target) {
				t.Fatalf("save error lost the cause: %v, want errors.Is(%v)", err, tc.target)
			}
			// Atomicity: the failed save left no temp litter and did not
			// touch the previous snapshot or the tail.
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 2 {
				names := make([]string, len(entries))
				for i, e := range entries {
					names[i] = e.Name()
				}
				t.Fatalf("failed save left the directory as %v", names)
			}
			restored := vas.NewCatalog()
			if err := restored.LoadSnapshot(dir); err != nil {
				t.Fatalf("snapshot unusable after a failed save: %v", err)
			}
			got, err := restored.QueryExact("gps", vas.Rect{MinX: 0.5, MinY: 1.5, MaxX: 1.5, MaxY: 2.5})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Points) != 1 {
				t.Fatalf("restart after failed save lost the durable append: %d points", len(got.Points))
			}
			// The fault is spent: a retry folds everything and removes the
			// tail.
			if err := cat.SaveSnapshot(dir); err != nil {
				t.Fatalf("save retry after the fault: %v", err)
			}
			if _, err := os.Stat(filepath.Join(dir, vas.TailFile)); !os.IsNotExist(err) {
				t.Fatal("successful retry left the folded tail log behind")
			}
		})
	}
}

// TestTailReplayValidation pins the all-or-nothing load contract for
// the tail log: a tail that cannot replay (unknown table) fails the
// whole load and leaves the catalog unpublished.
func TestTailReplayValidation(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 2000, Seed: 23})
	cat := newSnapshotCatalog(t, d)
	dir := t.TempDir()
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if err := cat.Append("ghost", []vas.Point{vas.Pt(1, 2)}); err == nil {
		t.Fatal("append to a missing table was accepted")
	}
	// Forge a tail record for a table the snapshot does not carry.
	if err := snapshotAppendTail(dir, "ghost"); err != nil {
		t.Fatal(err)
	}
	fresh := vas.NewCatalog()
	if err := fresh.LoadSnapshot(dir); err == nil {
		t.Fatal("tail targeting an unknown table was accepted")
	}
	if _, err := fresh.Query("gps", vas.Rect{}, 0); err == nil {
		t.Fatal("partial catalog was published despite the bad tail")
	}
}

// snapshotAppendTail writes a syntactically valid tail record for an
// arbitrary table name next to the snapshot, via the public Append path
// of a throwaway catalog pointed at the same directory layout.
func snapshotAppendTail(dir, table string) error {
	// The tail format is internal; reuse it through a scratch catalog
	// that has the target table, then move its log into place.
	scratch := vas.NewCatalog()
	pts := []vas.Point{vas.Pt(5, 6)}
	if err := scratch.LoadTable(table, pts); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp("", "tail")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	if err := scratch.SaveSnapshot(tmp); err != nil {
		return err
	}
	if err := scratch.Append(table, pts); err != nil {
		return err
	}
	data, err := os.ReadFile(filepath.Join(tmp, vas.TailFile))
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, vas.TailFile), data, 0o644)
}

func TestMetricsReportColdStart(t *testing.T) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 2000, Seed: 3})
	cat := newSnapshotCatalog(t, d)
	dir := t.TempDir()
	if err := cat.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	loaded := vas.NewCatalog()
	start := time.Now()
	if err := loaded.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	loaded.RecordColdStart("snapshot", time.Since(start))
	srv := httptest.NewServer(loaded.Handler())
	defer srv.Close()
	metrics := string(fetchBytes(t, srv.URL+"/metrics"))
	if !strings.Contains(metrics, `vasserve_coldstart_seconds{source="snapshot"}`) {
		t.Fatalf("metrics lack the snapshot cold-start line:\n%s", metrics)
	}

	// RecordColdStart after the handler exists must also land.
	cat.RecordColdStart("rebuild", 123*time.Millisecond)
	srv2 := httptest.NewServer(cat.Handler())
	defer srv2.Close()
	cat.RecordColdStart("rebuild", 456*time.Millisecond)
	metrics2 := string(fetchBytes(t, srv2.URL+"/metrics"))
	if !strings.Contains(metrics2, `vasserve_coldstart_seconds{source="rebuild"} 0.456`) {
		t.Fatalf("metrics lack the rebuild cold-start line:\n%s", metrics2)
	}
}
